"""Tests for the complexity / runtime scaling models (Fig. 2a, Fig. 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware import (
    QuantumRuntimeModel,
    quantum_memory_gb,
    quantum_runtime_seconds,
)
from repro.noise import get_calibration
from repro.scaling import (
    CircuitWorkload,
    adjoint_speedup,
    adjoint_sweep_ops,
    advantage_factor,
    build_benchmark_circuit,
    classical_memory_gb,
    classical_ops,
    classical_registers,
    complexity_table,
    crossover_qubits,
    fit_classical_runtime,
    measure_classical_seconds,
    parameter_shift_sweep_ops,
    quantum_ops,
    quantum_registers,
    runtime_table,
)


class TestCostModel:
    def test_classical_regs_exponential(self):
        assert classical_registers(10) == 2 * 2**10
        assert classical_registers(11) / classical_registers(10) == 2.0

    def test_quantum_regs_linear(self):
        assert quantum_registers(10) == 10.0
        assert quantum_registers(40) == 40.0

    def test_classical_ops_double_per_qubit(self):
        ratio = classical_ops(20) / classical_ops(19)
        assert np.isclose(ratio, 2.0)

    def test_quantum_ops_near_constant(self):
        """Quantum op count grows at most linearly (routing)."""
        ratio = quantum_ops(40) / quantum_ops(20)
        assert ratio < 3.0

    def test_complexity_table_structure(self):
        table = complexity_table([4, 8, 12])
        assert table["qubits"].tolist() == [4, 8, 12]
        assert np.all(np.diff(table["classical_ops"]) > 0)

    def test_fig2a_shape_classical_overtakes(self):
        """Classical ops explode past quantum ops as qubits grow."""
        table = complexity_table(list(range(2, 41, 2)))
        cross = crossover_qubits(
            table["qubits"], table["classical_ops"], table["quantum_ops"]
        )
        assert cross is not None
        assert 4 <= cross <= 30
        # At 40 qubits classical is astronomically more expensive.
        factor = advantage_factor(
            table["qubits"], table["classical_ops"],
            table["quantum_ops"], 40,
        )
        assert factor > 1e4

    def test_validation(self):
        with pytest.raises(ValueError):
            classical_ops(0)
        with pytest.raises(ValueError):
            quantum_registers(0)


class TestGradientSweepModel:
    def test_adjoint_independent_of_parameter_count(self):
        """Doubling the gate count doubles (not squares) adjoint cost."""
        small = CircuitWorkload(n_rotation_gates=16, n_rzz_gates=32)
        large = CircuitWorkload(n_rotation_gates=32, n_rzz_gates=64)
        adjoint_ratio = adjoint_sweep_ops(10, large) / adjoint_sweep_ops(
            10, small
        )
        shift_ratio = parameter_shift_sweep_ops(
            10, large
        ) / parameter_shift_sweep_ops(10, small)
        assert np.isclose(adjoint_ratio, 2.0, rtol=0.05)
        assert np.isclose(shift_ratio, 4.0, rtol=0.05)

    def test_adjoint_wins_at_paper_scale(self):
        """48 trainable occurrences vs 4 measured qubits: adjoint wins."""
        assert adjoint_speedup(4, n_observables=4) > 5.0

    def test_shift_wins_below_crossover(self):
        """P below ~(2 + T) / 2 is the only regime where shift is cheaper."""
        tiny = CircuitWorkload(n_rotation_gates=1, n_rzz_gates=0)
        assert adjoint_speedup(10, tiny, n_observables=10) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            adjoint_sweep_ops(0)
        with pytest.raises(ValueError):
            adjoint_sweep_ops(4, n_observables=0)
        with pytest.raises(ValueError):
            parameter_shift_sweep_ops(0)


class TestRuntimeModel:
    def test_benchmark_circuit_gate_counts(self):
        circuit = build_benchmark_circuit(8)
        counts = circuit.count_ops()
        assert counts["rzz"] == 32
        assert counts["rx"] + counts["ry"] + counts["rz"] == 16

    def test_measure_classical_seconds_positive(self):
        assert measure_classical_seconds(6, n_circuits=2) > 0

    def test_classical_memory_exponential(self):
        assert classical_memory_gb(31) / classical_memory_gb(30) == 2.0
        # ~34 GB at 30 qubits for two complex128 buffers.
        assert 25 < classical_memory_gb(30) < 50

    def test_quantum_memory_negligible(self):
        assert quantum_memory_gb(40) < 0.1

    def test_fit_extrapolates_exponentially(self):
        fit = fit_classical_runtime(
            measure_qubits=[6, 8, 10], n_circuits=1
        )
        assert fit.coeff > 0
        ratio = fit(np.array([30]))[0] / fit(np.array([29]))[0]
        assert 1.9 < ratio < 2.1

    def test_runtime_table_fig8_shape(self):
        """The headline claim: crossover in the mid-to-high 20s."""
        fit = fit_classical_runtime(
            measure_qubits=[6, 8, 10, 12], n_circuits=1
        )
        table = runtime_table(fit=fit)
        cross = crossover_qubits(
            table["qubits"], table["classical_runtime_s"],
            table["quantum_runtime_s"],
        )
        assert cross is not None
        assert 20 <= cross <= 34
        memory_cross = crossover_qubits(
            table["qubits"], table["classical_memory_gb"],
            table["quantum_memory_gb"],
        )
        assert memory_cross is not None

    def test_quantum_runtime_near_linear(self):
        r20 = quantum_runtime_seconds(20)
        r40 = quantum_runtime_seconds(40)
        assert r40 < 4 * r20  # far from exponential

    def test_device_runtime_model(self):
        model = QuantumRuntimeModel(get_calibration("ibmq_santiago"))
        single = model.circuit_seconds(20, 10, shots=1024)
        assert single > model.per_circuit_overhead_s
        batch = model.batch_seconds(5, 20, 10, shots=1024)
        assert np.isclose(batch, 5 * single)

    def test_device_runtime_validation(self):
        model = QuantumRuntimeModel(get_calibration("ibmq_santiago"))
        with pytest.raises(ValueError):
            model.circuit_seconds(-1, 0)
        with pytest.raises(ValueError):
            model.batch_seconds(0, 1, 1)


class TestCrossover:
    def test_basic_crossover(self):
        qubits = np.array([1, 2, 3, 4])
        classical = np.array([1.0, 2.0, 4.0, 8.0])
        quantum = np.array([3.0, 3.0, 3.0, 3.0])
        assert crossover_qubits(qubits, classical, quantum) == 3

    def test_no_crossover(self):
        qubits = np.array([1, 2, 3])
        assert crossover_qubits(
            qubits, np.array([1.0, 1, 1]), np.array([2.0, 2, 2])
        ) is None

    def test_transient_dip_ignored(self):
        """Quantum must stay cheaper for good, not momentarily."""
        qubits = np.array([1, 2, 3, 4])
        classical = np.array([5.0, 1.0, 5.0, 8.0])
        quantum = np.array([3.0, 3.0, 3.0, 3.0])
        assert crossover_qubits(qubits, classical, quantum) == 3

    def test_non_increasing_qubits_rejected(self):
        with pytest.raises(ValueError):
            crossover_qubits(
                np.array([2, 2]), np.ones(2), np.ones(2)
            )

    def test_advantage_factor_missing_point(self):
        with pytest.raises(ValueError):
            advantage_factor(np.array([1, 2]), np.ones(2), np.ones(2), 5)


class TestWorkload:
    def test_default_matches_paper(self):
        workload = CircuitWorkload()
        assert workload.n_rotation_gates == 16
        assert workload.n_rzz_gates == 32
        assert workload.n_circuits == 50
        assert workload.shots == 1024
