"""Per-task QNN model definitions (Sec. 4.1).

Each benchmark task fixes (a) an encoder, (b) a trainable ansatz built from
the paper's layer vocabulary, and (c) the number of classes:

* MNIST-2 / Fashion-2:  1 RZZ layer + 1 RY layer              (8 params)
* MNIST-4:              3 x (RX + RY + RZ + CZ) layers        (36 params)
* Fashion-4:            3 x (RZZ + RY) layers                 (24 params)
* Vowel-4:              2 x (RZZ + RXX) layers                (16 params)

``QnnArchitecture`` bundles all of it and builds the full (encoder compose
ansatz) circuit for a given input example.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.circuits import encoders as _encoders
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.layers import build_layered_ansatz


@dataclasses.dataclass(frozen=True)
class QnnArchitecture:
    """A complete QNN model family for one benchmark task.

    Attributes:
        name: Task name, e.g. ``"mnist2"``.
        n_qubits: Logical qubit count (4 for all paper tasks).
        encoder_name: Key into :data:`repro.circuits.encoders.ENCODERS`.
        layer_names: Ordered layer types of the trainable ansatz.
        n_classes: Number of output classes (2 or 4).
    """

    name: str
    n_qubits: int
    encoder_name: str
    layer_names: tuple[str, ...]
    n_classes: int

    def build_ansatz(self) -> QuantumCircuit:
        """Fresh trainable ansatz (parameters initialized to zero)."""
        return build_layered_ansatz(self.n_qubits, list(self.layer_names))

    @property
    def num_parameters(self) -> int:
        """Trainable parameter count of the ansatz."""
        return self.build_ansatz().num_parameters

    @property
    def n_features(self) -> int:
        """Input feature count the encoder expects."""
        return _encoders.get_encoder(self.encoder_name)[1]

    def encode(self, x: Sequence[float]) -> QuantumCircuit:
        """Encoder circuit for one input example."""
        builder, _ = _encoders.get_encoder(self.encoder_name)
        return builder(x, self.n_qubits)

    def full_circuit(
        self, x: Sequence[float], theta: Sequence[float] | np.ndarray
    ) -> QuantumCircuit:
        """Encoder + ansatz circuit, ansatz bound to ``theta``."""
        ansatz = self.build_ansatz().bind(theta)
        return self.encode(x).compose(ansatz)

    def init_parameters(
        self, rng: np.random.Generator, scale: float = 0.1
    ) -> np.ndarray:
        """Small random initial angles (uniform in ``[-scale, scale]``)."""
        n = self.num_parameters
        return rng.uniform(-scale, scale, size=n)


def _repeat(block: Sequence[str], times: int) -> tuple[str, ...]:
    return tuple(list(block) * times)


ARCHITECTURES: dict[str, QnnArchitecture] = {
    "mnist2": QnnArchitecture(
        name="mnist2",
        n_qubits=4,
        encoder_name="image16",
        layer_names=("rzz", "ry"),
        n_classes=2,
    ),
    "fashion2": QnnArchitecture(
        name="fashion2",
        n_qubits=4,
        encoder_name="image16",
        layer_names=("rzz", "ry"),
        n_classes=2,
    ),
    "mnist4": QnnArchitecture(
        name="mnist4",
        n_qubits=4,
        encoder_name="image16",
        layer_names=_repeat(("rx", "ry", "rz", "cz"), 3),
        n_classes=4,
    ),
    "fashion4": QnnArchitecture(
        name="fashion4",
        n_qubits=4,
        encoder_name="image16",
        layer_names=_repeat(("rzz", "ry"), 3),
        n_classes=4,
    ),
    "vowel4": QnnArchitecture(
        name="vowel4",
        n_qubits=4,
        encoder_name="vowel10",
        layer_names=_repeat(("rzz", "rxx"), 2),
        n_classes=4,
    ),
}


def get_architecture(name: str) -> QnnArchitecture:
    """Look up a benchmark architecture by task name."""
    key = name.lower().replace("-", "").replace("_", "")
    if key not in ARCHITECTURES:
        raise KeyError(
            f"unknown architecture {name!r}; known: {sorted(ARCHITECTURES)}"
        )
    return ARCHITECTURES[key]
