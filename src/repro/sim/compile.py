"""Compiled execution plans: gate fusion and kernel specialization.

Every simulation engine used to walk a circuit gate-by-gate, issuing one
(batched) GEMM per operation — even for parameterless runs whose product
is a constant, and for diagonal or permutation gates that need no matmul
at all.  This module lowers a circuit *structure* once into an
:class:`ExecutionPlan` — a short list of specialized steps — that every
structurally identical circuit (parameter-shift clones, re-encoded
mini-batch rows, serving flushes, worker-pool shards) then replays:

* **Fusion** — adjacent gates whose combined wire support stays within
  ``FUSE_MAX`` qubits collapse into one stacked unitary: fewer, fatter
  GEMMs.  Gates on disjoint wires commute exactly, so a gate may join
  the deepest open block that shares its wires even when unrelated
  gates sit between them in program order.
* **Constant folding** — runs of parameterless gates precompose into a
  single matrix at compile time, shared batch-wide forever.
* **Kernel specialization** — blocks that are diagonal become one
  elementwise multiply; 0/1 permutation blocks (X/CNOT/SWAP runs)
  become an index take.  The batched reference kernels live in
  :mod:`repro.sim.apply` (:func:`~repro.sim.apply.apply_diag_batched`,
  :func:`~repro.sim.apply.apply_permutation_batched` and their density
  twins); plan steps execute the *same* array operations with their
  axis recipes precomputed at plan-finalize time (see ``_Layout``), and
  the equivalence tests pin the two against each other.  Registry tags
  (:attr:`repro.sim.gates.GateSpec.diagonal` / ``permutation``) mark
  the gates; constant blocks are additionally classified from their
  folded matrix, so e.g. ``cx; cx`` cancels to nothing.
* **Batch-wide matrix preparation** — parameterized gate matrices for
  the *whole plan* are built up front, one vectorized closed-form call
  per gate type (:func:`repro.sim.gates.batched_rotation` over every
  occurrence x batch row at once), instead of one build per op per
  call.  Steps then compose the prebuilt ``(B, d, d)`` stacks with
  plain ``matmul`` and compile-time kron embeddings.
* **Noise segments** (density mode) — each gate's per-wire channel
  stack is precomposed into a single 4x4 superoperator at compile
  time, and — because a single-qubit unitary's conjugation is itself a
  4x4 superoperator on that wire — whole per-wire runs of
  ``gate, channel, gate, channel, ...`` collapse into **one**
  superoperator application per wire per segment
  (:class:`WireChainStep`).  A channel only fences fusion on its own
  wire; diagonal two-qubit gates in between still specialize to
  elementwise multiplies.  Noise models without the ``superop_for``
  fast path fall back to per-gate Kraus steps with no fusion, keeping
  the generic channel ordering exact.

Plans depend only on the circuit's :meth:`~repro.circuits.
QuantumCircuit.structure_signature` (plus the backend's noise model and
mode), never on angle values.  Backends keep plans in a
:class:`PlanCache` (an LRU keyed by structure signature; the owning
backend pins down the noise-model / layout identity), so a training
epoch or parameter-shift sweep compiles each structure exactly once.

Numerical contract: fused execution matches the unfused per-gate path
within ``1e-10`` on observed distributions and is deterministic (same
plan, same inputs → same bits).  The bit-identical seed path stays
available via ``fused=False`` / ``REPRO_FUSED=0`` on the backends.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from collections import OrderedDict
from collections.abc import Callable

import numpy as np

from repro.sim import apply as _apply
from repro.sim import gates as _gates

#: Default maximum combined wire support of one fused unitary block.
#: 2 keeps every fused matrix at most 4x4 — single-qubit runs and
#: two-qubit neighborhoods collapse while application cost per step
#: stays at the cost of one two-qubit gate.
FUSE_MAX = 2

_EYE2 = np.eye(2, dtype=np.complex128)

#: Basis permutation swapping the two wires of a 4x4 matrix.
_SWAP_PERM = np.array([0, 2, 1, 3], dtype=np.intp)


def fused_enabled(default: bool = True) -> bool:
    """Resolve the ``REPRO_FUSED`` environment toggle.

    ``REPRO_FUSED=0`` (or ``false``/``no``/``off``) disables compiled
    execution plans process-wide, restoring the bit-identical per-gate
    path; unset or anything else keeps the default.  Backends read this
    at construction time, so tests can flip it per-instance.
    """
    raw = os.environ.get("REPRO_FUSED")
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off")


# ---------------------------------------------------------------------------
# Parameter sources
# ---------------------------------------------------------------------------

class SingleCircuitParams:
    """Adapt one circuit to the ``CircuitBatch`` parameter interface.

    Plans fetch per-op angles through ``op_params(position)``; this
    wraps a single circuit's resolved operations as a batch of one, so
    the single-circuit engines run the same plan code — and therefore
    produce per-row results bit-identical to the batched fused path.
    """

    def __init__(self, circuit):
        self._params = [
            np.array([op.params], dtype=np.float64) if op.params else None
            for op in circuit.operations
        ]

    def op_params(self, position: int) -> np.ndarray | None:
        return self._params[position]

    def op_is_uniform(self, position: int) -> bool:
        return True


# ---------------------------------------------------------------------------
# Runtime matrix preparation
# ---------------------------------------------------------------------------
#
# Parameterized ops are *prepared* once per plan execution: one
# vectorized closed-form evaluation per (gate type, embedding) group
# builds the matrices for every occurrence x batch row at once, already
# lifted into the basis their step consumes them in (kron-embedded into
# a 2-wire block, conjugation superoperator, bare diagonal, ...).
# Steps then reduce to plain matmuls / gathers over prebuilt stacks.

def _embed0(mats: np.ndarray) -> np.ndarray:
    # kron(U, I): the op acts on the block's first (most significant)
    # wire — out[..., (i,k), (j,l)] = U[..., i, j] * eye[k, l], via one
    # broadcast multiply (cheaper than einsum on these tiny stacks).
    out = mats[..., :, None, :, None] * _EYE2[None, :, None, :]
    return out.reshape(mats.shape[:-2] + (4, 4))


def _embed1(mats: np.ndarray) -> np.ndarray:
    # kron(I, U): the op acts on the block's second wire.
    out = mats[..., None, :, None, :] * _EYE2[:, None, :, None]
    return out.reshape(mats.shape[:-2] + (4, 4))


def _embed_swap(mats: np.ndarray) -> np.ndarray:
    # Two-qubit op whose wire order is reversed within the block.
    return mats[..., _SWAP_PERM, :][..., :, _SWAP_PERM]


def _kron_conj(mats: np.ndarray) -> np.ndarray:
    """``U (x) conj(U)``: the superoperator of a unitary conjugation."""
    out = mats[..., :, None, :, None] * mats.conj()[..., None, :, None, :]
    return out.reshape(mats.shape[:-2] + (4, 4))


#: Embedding applied group-wide during preparation, keyed by tag.
_EMBEDDINGS = {
    "raw": lambda mats: mats,
    "embed0": _embed0,
    "embed1": _embed1,
    "swap": _embed_swap,
    "kron": _kron_conj,
}


@dataclasses.dataclass(frozen=True)
class _ParamUse:
    """How one step consumes one parameterized op's matrices."""

    name: str
    position: int
    embed: str  # key of _EMBEDDINGS, or "diag" for bare diagonals


@dataclasses.dataclass
class _ParamGroup:
    """All same-way-consumed occurrences of one gate type in a plan."""

    name: str
    embed: str
    positions: list[int]
    closed_form: bool
    generator: np.ndarray | None


def _build_param_groups(steps: list) -> list[_ParamGroup]:
    by_key: "OrderedDict[tuple[str, str], list[int]]" = OrderedDict()
    for step in steps:
        for use in step.param_ops():
            by_key.setdefault((use.name, use.embed), []).append(
                use.position
            )
    groups = []
    for (name, embed), positions in by_key.items():
        spec = _gates.get_gate(name)
        closed = spec.shift_rule and spec.generator is not None
        groups.append(
            _ParamGroup(
                name=name,
                embed=embed,
                positions=positions,
                closed_form=closed,
                generator=(
                    _gates.pauli_word_matrix(spec.generator)
                    if closed
                    else None
                ),
            )
        )
    return groups


def _group_thetas(group: _ParamGroup, params) -> np.ndarray:
    """Flat ``(len(positions) * B,)`` angles of one closed-form group."""
    values = [params.op_params(p) for p in group.positions]
    if len(values) == 1:
        return values[0][:, 0]
    return np.concatenate(values, axis=0)[:, 0]


def _group_raw_matrices(group: _ParamGroup, params) -> np.ndarray:
    """``(P, B, d, d)`` stacks for one group, one vectorized build.

    Closed-form rotations evaluate every occurrence x batch angle in a
    single :func:`~repro.sim.gates.batched_rotation` call; elementwise
    operation order matches the per-op build exactly, so each slice is
    bit-identical to what the unprepared path would construct.
    """
    if group.closed_form:
        stacked = _gates.batched_rotation(
            group.generator, _group_thetas(group, params)
        )
        dim = stacked.shape[-1]
        return stacked.reshape(len(group.positions), -1, dim, dim)
    return np.stack(
        [
            _gates.stacked_matrices(group.name, params.op_params(p))
            for p in group.positions
        ]
    )


def _group_diagonals(group: _ParamGroup, params) -> np.ndarray:
    """``(P, B, d)`` diagonals for a group of diagonal gates.

    For closed-form rotations with a diagonal generator the diagonal is
    evaluated directly (``cos - i sin * g_ii`` — the same elementwise
    operations :func:`~repro.sim.gates.batched_rotation` applies to the
    diagonal entries, so the values are bit-identical to extracting the
    diagonal of the full matrix).
    """
    if group.closed_form and _is_exact_diagonal(group.generator):
        thetas = _group_thetas(group, params)
        gdiag = np.diagonal(group.generator)
        cos = np.cos(thetas / 2.0)[:, None]
        sin = np.sin(thetas / 2.0)[:, None]
        diag = cos * np.ones_like(gdiag) - 1j * sin * gdiag
        return diag.reshape(len(group.positions), -1, gdiag.shape[0])
    return np.diagonal(
        _group_raw_matrices(group, params), axis1=-2, axis2=-1
    )


def _prepare_matrices(
    groups: list[_ParamGroup], n_ops: int, params
) -> list[np.ndarray | None]:
    """Per-position prepared arrays, embedded for their consuming step."""
    matrices: list[np.ndarray | None] = [None] * n_ops
    for group in groups:
        if group.embed == "diag":
            prepared = _group_diagonals(group, params)
        else:
            prepared = _EMBEDDINGS[group.embed](
                _group_raw_matrices(group, params)
            )
        for index, position in enumerate(group.positions):
            matrices[position] = prepared[index]
    return matrices


def _embed_tag(axes: tuple[int, ...], block_k: int) -> str:
    """Pick the embedding that lifts an op matrix into block basis."""
    if block_k == 1:
        return "raw"
    if block_k == 2:
        if axes == (0,):
            return "embed0"
        if axes == (1,):
            return "embed1"
        if axes == (0, 1):
            return "raw"
        if axes == (1, 0):
            return "swap"
    raise ValueError(
        f"no embedding for axes {axes} in a {block_k}-wire block "
        f"(fuse_max > 2 is not supported)"
    )


# ---------------------------------------------------------------------------
# Precomputed application layouts
# ---------------------------------------------------------------------------
#
# The generic kernels in repro.sim.apply normalize axes and validate
# shapes on every call; a plan applies the same step to the same layout
# thousands of times, so the transpose permutations and reshape targets
# are resolved once at plan-finalize time.  The array operations
# themselves (transpose order, reshape, matmul / gather / multiply) are
# exactly the generic kernels' — results stay bit-identical to them.

class _Layout:
    """The symbolic axis order of the evolving tensor.

    Plans never restore the canonical axis order between steps: each
    matmul-style step leaves its target axes at the front and records
    the resulting permutation, the next step transposes *from that
    layout* (a view — the data was made contiguous in it by the
    reshape), and a single restoring transpose runs once at the end of
    the plan.  Every intermediate is therefore contiguous in its own
    layout, which keeps reshapes to one copy per matmul step and lets
    diagonal factors broadcast against aligned, contiguous data.
    Element values are untouched — only their placement moves — so
    results stay bit-identical to the eager-restore kernels.
    """

    __slots__ = ("perm", "rank")

    def __init__(self, rank: int):
        self.perm = tuple(range(rank))
        self.rank = rank

    def positions_of(self, axes: list[int]) -> list[int]:
        """Current positions of the given canonical axes."""
        return [self.perm.index(a) for a in axes]

    def to_front(self, axes: list[int]) -> tuple[int, ...]:
        """Transpose bringing the canonical ``axes`` to positions 1..k.

        Updates the symbolic layout; returns the transpose to apply to
        the concrete tensor (relative to its current layout).
        """
        positions = self.positions_of(axes)
        batch_pos = self.perm.index(0)
        fwd = (
            (batch_pos,)
            + tuple(positions)
            + tuple(
                p
                for p in range(self.rank)
                if p != batch_pos and p not in positions
            )
        )
        self.perm = tuple(self.perm[p] for p in fwd)
        return fwd

    def restore(self) -> tuple[int, ...] | None:
        """Transpose returning to canonical order (None if already)."""
        if self.perm == tuple(range(self.rank)):
            return None
        return tuple(int(i) for i in np.argsort(self.perm))


class _MatmulLayout:
    """Per-step transpose/reshape recipe under deferred layout."""

    __slots__ = ("fwd", "dim")

    def __init__(self, axes: list[int], layout: _Layout):
        self.fwd = layout.to_front(axes)
        self.dim = 2 ** len(axes)

    def apply(self, tensor: np.ndarray, mats: np.ndarray) -> np.ndarray:
        moved = tensor.transpose(self.fwd)
        flat = moved.reshape(tensor.shape[0], self.dim, -1)
        out = np.matmul(mats, flat)
        return out.reshape(moved.shape)

    def take(self, tensor: np.ndarray, source: np.ndarray) -> np.ndarray:
        moved = tensor.transpose(self.fwd)
        flat = moved.reshape(tensor.shape[0], self.dim, -1)
        out = flat[:, source, :]
        return out.reshape(moved.shape)


class _DiagLayout:
    """Broadcast recipe lifting a ``(B, 2^k)`` diagonal onto a tensor.

    Built against the plan's live layout: the factor's axes land
    wherever the target axes currently sit, so the multiply runs
    against aligned (and, under deferred layout, contiguous) data and
    the tensor's layout is left unchanged.
    """

    __slots__ = ("k", "order", "shape")

    def __init__(self, axes: list[int], layout: _Layout):
        self.k = len(axes)
        positions = layout.positions_of(axes)
        self.order = tuple(
            [0] + [1 + int(j) for j in np.argsort(positions)]
        )
        shape = [1] * layout.rank
        for position in positions:
            shape[position] = 2
        self.shape = shape

    def factor(self, diags: np.ndarray) -> np.ndarray:
        batch = diags.shape[0] if diags.ndim == 2 else 1
        tensor = diags.reshape((batch,) + (2,) * self.k)
        tensor = tensor.transpose(self.order)
        shape = list(self.shape)
        shape[0] = batch
        return tensor.reshape(shape)


def _state_axes(wires: tuple[int, ...]) -> list[int]:
    return [w + 1 for w in wires]


def _bra_axes(wires: tuple[int, ...], n_qubits: int) -> list[int]:
    return [n_qubits + w + 1 for w in wires]


# ---------------------------------------------------------------------------
# Plan steps
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class ConstantStep:
    """A precomposed parameterless unitary, shared batch-wide."""

    wires: tuple[int, ...]
    matrix: np.ndarray

    kind = "matmul"

    def finalize(self, n_qubits: int, mode: str, layout: _Layout) -> None:
        self._ket = _MatmulLayout(_state_axes(self.wires), layout)
        if mode == "density":
            self._bra = _MatmulLayout(
                _bra_axes(self.wires, n_qubits), layout
            )
            self._conj = self.matrix.conj()

    def param_ops(self):
        return []

    def run_state(self, tensor, matrices):
        return self._ket.apply(tensor, self.matrix)

    def run_density(self, tensor, matrices):
        out = self._ket.apply(tensor, self.matrix)
        return self._bra.apply(out, self._conj)


@dataclasses.dataclass
class _Factor:
    """One multiplicand of a composed step.

    Either a compile-time constant ``matrix`` (already lifted into the
    step's basis, adjacent constants folded together), or a reference
    to a parameterized op whose prepared — already embedded — stack is
    fetched per call.
    """

    matrix: np.ndarray | None = None
    name: str | None = None
    position: int | None = None
    embed: str | None = None


def _fold_factors(factors: list[_Factor]) -> list[_Factor]:
    """Precompose adjacent constant factors at compile time."""
    folded: list[_Factor] = []
    for factor in factors:
        if (
            factor.matrix is not None
            and folded
            and folded[-1].matrix is not None
        ):
            folded[-1] = _Factor(
                matrix=factor.matrix @ folded[-1].matrix
            )
        else:
            folded.append(factor)
    return folded


def _compose_factors(factors: list[_Factor], matrices: list) -> np.ndarray:
    """Left-multiply the factor sequence into one (stacked) matrix."""
    acc = None
    for factor in factors:
        mat = (
            factor.matrix
            if factor.matrix is not None
            else matrices[factor.position]
        )
        acc = mat if acc is None else np.matmul(mat, acc)
    return acc


def _factor_uses(factors: list[_Factor]) -> list[_ParamUse]:
    return [
        _ParamUse(f.name, f.position, f.embed)
        for f in factors
        if f.position is not None
    ]


@dataclasses.dataclass
class FusedStep:
    """A parameterized fused block, recomposed per call.

    The block unitary is the plain matmul product of the member
    factors — parameterless gates folded into constants and
    parameterized gates fetched from the prepared (pre-embedded)
    stacks — then applied once.
    """

    wires: tuple[int, ...]
    factors: list[_Factor]

    kind = "matmul"

    def finalize(self, n_qubits: int, mode: str, layout: _Layout) -> None:
        self._ket = _MatmulLayout(_state_axes(self.wires), layout)
        if mode == "density":
            self._bra = _MatmulLayout(
                _bra_axes(self.wires, n_qubits), layout
            )

    def param_ops(self):
        return _factor_uses(self.factors)

    def matrices(self, matrices: list) -> np.ndarray:
        return _compose_factors(self.factors, matrices)

    def run_state(self, tensor, matrices):
        return self._ket.apply(tensor, self.matrices(matrices))

    def run_density(self, tensor, matrices):
        block = self.matrices(matrices)
        out = self._ket.apply(tensor, block)
        return self._bra.apply(out, block.conj())


@dataclasses.dataclass
class _DiagOp:
    """One parameterized diagonal factor inside a diagonal block.

    ``jmap`` gathers the op's local (prepared, bare) diagonal out to
    the block's joint index: ``expanded[i] = diag[jmap[i]]``.
    """

    name: str
    jmap: np.ndarray
    position: int


@dataclasses.dataclass
class DiagStep:
    """A fused diagonal block: one elementwise multiply per application.

    Diagonal gates commute, so any mix of parameterless (folded into
    ``constant`` at compile time) and parameterized diagonal gates
    collapses into a single ``(B, 2^k)`` diagonal; adjacent diagonal
    steps additionally merge across arbitrary wire support (the
    diagonal grows, the application stays one elementwise pass).
    """

    wires: tuple[int, ...]
    constant: np.ndarray | None
    ops: list[_DiagOp]

    kind = "diag"

    def finalize(self, n_qubits: int, mode: str, layout: _Layout) -> None:
        self._ket = _DiagLayout(_state_axes(self.wires), layout)
        if mode == "density":
            self._bra = _DiagLayout(
                _bra_axes(self.wires, n_qubits), layout
            )

    def param_ops(self):
        return [_ParamUse(op.name, op.position, "diag") for op in self.ops]

    def diags(self, matrices: list) -> np.ndarray:
        total = self.constant
        for op in self.ops:
            d = matrices[op.position][..., op.jmap]
            total = d if total is None else total * d
        return total

    def run_state(self, tensor, matrices):
        return tensor * self._ket.factor(self.diags(matrices))

    def run_density(self, tensor, matrices):
        diags = self.diags(matrices)
        out = tensor * self._ket.factor(diags)
        return out * self._bra.factor(diags.conj())


@dataclasses.dataclass
class PermutationStep:
    """A fused 0/1 permutation block: one index take per application.

    Adjacent permutation steps merge across arbitrary wire support by
    composing their gather maps at compile time.
    """

    wires: tuple[int, ...]
    source: np.ndarray

    kind = "permutation"

    def finalize(self, n_qubits: int, mode: str, layout: _Layout) -> None:
        self._ket = _MatmulLayout(_state_axes(self.wires), layout)
        if mode == "density":
            self._bra = _MatmulLayout(
                _bra_axes(self.wires, n_qubits), layout
            )

    def param_ops(self):
        return []

    def run_state(self, tensor, matrices):
        return self._ket.take(tensor, self.source)

    def run_density(self, tensor, matrices):
        out = self._ket.take(tensor, self.source)
        return self._bra.take(out, self.source)


@dataclasses.dataclass
class WireChainStep:
    """A per-wire run of single-qubit gates and channels (density only).

    A single-qubit unitary's conjugation ``rho -> U rho U^dagger`` is
    itself a 4x4 superoperator ``U (x) conj(U)`` on that wire's (ket,
    bra) index pair, so a whole segment ``gate, channel, gate,
    channel, ...`` on one wire composes into **one** 4x4 (or
    ``(B, 4, 4)``) matrix and applies with a single contraction —
    instead of two matmuls per gate plus one per channel.  Channel
    superoperators and parameterless gates are folded into constant
    factors at compile time; parameterized gates are fetched from the
    prepared stacks, pre-lifted by the ``kron`` embedding.
    """

    wire: int
    factors: list[_Factor]

    kind = "superop"

    def finalize(self, n_qubits: int, mode: str, layout: _Layout) -> None:
        self._layout = _MatmulLayout(
            [self.wire + 1, n_qubits + self.wire + 1], layout
        )

    def param_ops(self):
        return _factor_uses(self.factors)

    def superops(self, matrices: list) -> np.ndarray:
        return _compose_factors(self.factors, matrices)

    def run_state(self, tensor, matrices):
        raise TypeError("noise steps only run on density tensors")

    def run_density(self, tensor, matrices):
        return self._layout.apply(tensor, self.superops(matrices))


@dataclasses.dataclass
class KrausStep:
    """A generic Kraus channel step (density only, no fusion)."""

    wires: tuple[int, ...]
    kraus_ops: tuple[np.ndarray, ...]

    kind = "kraus"

    def finalize(self, n_qubits: int, mode: str, layout: _Layout) -> None:
        # The generic Kraus kernel expects the canonical axis order:
        # restore it first and reset the symbolic layout.
        self._restore = layout.restore()
        layout.perm = tuple(range(layout.rank))

    def param_ops(self):
        return []

    def run_state(self, tensor, matrices):
        raise TypeError("noise steps only run on density tensors")

    def run_density(self, tensor, matrices):
        if self._restore is not None:
            tensor = tensor.transpose(self._restore)
        return _apply.apply_kraus_to_density_batched(
            tensor, self.kraus_ops, self.wires
        )


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------

class ExecutionPlan:
    """A compiled, structure-keyed lowering of one circuit structure.

    Attributes:
        n_qubits: Width the plan evolves.
        mode: ``"statevector"`` or ``"density"`` — which engine family
            the steps were compiled for (noise steps exist only in
            density plans).
        steps: The ordered specialized steps.
        n_source_ops: Gate count of the source structure, used to guard
            against running a plan against a mismatched batch.
        param_indices: Per-source-position trainable parameter index
            (``None`` for fixed or bound ops) — the trainable-gate
            boundaries :meth:`adjoint` differentiates at.  ``None``
            when the plan was built without this metadata.
    """

    def __init__(
        self,
        n_qubits: int,
        mode: str,
        steps: list,
        n_source_ops: int,
        param_indices: tuple | None = None,
    ):
        self.n_qubits = n_qubits
        self.mode = mode
        self.steps = steps
        self.n_source_ops = n_source_ops
        self.param_indices = param_indices
        self._adjoint = None
        self._param_groups = _build_param_groups(steps)
        layout = _Layout((2 * n_qubits if mode == "density" else n_qubits) + 1)
        for step in steps:
            step.finalize(n_qubits, mode, layout)
        #: Final transpose returning the tensor to canonical axis order
        #: (steps defer it — see _Layout).
        self._restore = layout.restore()

    def run_statevector(self, tensor: np.ndarray, params) -> np.ndarray:
        """Evolve a ``(B,) + (2,)*n`` stacked statevector tensor."""
        matrices = _prepare_matrices(
            self._param_groups, self.n_source_ops, params
        )
        for step in self.steps:
            tensor = step.run_state(tensor, matrices)
        if self._restore is not None:
            tensor = tensor.transpose(self._restore)
        return tensor

    def run_density(self, tensor: np.ndarray, params) -> np.ndarray:
        """Evolve a ``(B,) + (2,)*2n`` stacked density tensor."""
        matrices = _prepare_matrices(
            self._param_groups, self.n_source_ops, params
        )
        for step in self.steps:
            tensor = step.run_density(tensor, matrices)
        if self._restore is not None:
            tensor = tensor.transpose(self._restore)
        return tensor

    def adjoint(self) -> "AdjointPlan":
        """The plan's backward (reverse-replay) lowering, built lazily.

        The :class:`AdjointPlan` is a pure value derived from the plan's
        structure, so it is compiled once and cached on the plan —
        every adjoint sweep over a cached structure reuses it.
        """
        if self._adjoint is None:
            self._adjoint = AdjointPlan(self)
        return self._adjoint

    def step_counts(self) -> dict[str, int]:
        """Histogram of step kinds (``matmul`` / ``diag`` / ...)."""
        counts: dict[str, int] = {}
        for step in self.steps:
            counts[step.kind] = counts.get(step.kind, 0) + 1
        return counts

    def gemm_count(self) -> int:
        """Number of matmul-kernel steps (the fused-plan GEMMs)."""
        return sum(1 for step in self.steps if step.kind == "matmul")

    def cost_ops(self) -> float:
        """Estimated flops to execute the plan once per circuit.

        Uses the per-step-kind formulas of
        :mod:`repro.scaling.cost_model`, so the :class:`~repro.parallel.
        ShardPlanner`'s chunk sizing stays consistent with the fused
        execution the workers actually perform.
        """
        from repro.scaling import cost_model

        total = 0.0
        for step in self.steps:
            if step.kind == "matmul":
                total += cost_model.kqubit_gate_ops(
                    self.n_qubits, len(step.wires)
                )
            elif step.kind == "diag":
                total += cost_model.diag_gate_ops(self.n_qubits)
            elif step.kind == "permutation":
                total += cost_model.permutation_gate_ops(self.n_qubits)
            elif step.kind == "superop":
                # One 4x4 on the wire's fused (ket, bra) index pair of
                # the density tensor: like a single-qubit GEMM.
                total += cost_model.kqubit_gate_ops(self.n_qubits, 1)
            else:  # kraus: one conjugation per operator
                total += 2.0 * len(step.kraus_ops) * (
                    cost_model.kqubit_gate_ops(
                        self.n_qubits, len(step.wires)
                    )
                )
        return total

    def describe(self) -> str:
        """Short human-readable summary for logs."""
        counts = self.step_counts()
        body = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        return (
            f"ExecutionPlan({self.mode}, {self.n_qubits}q, "
            f"{self.n_source_ops} ops -> {len(self.steps)} steps: {body})"
        )

    def __repr__(self) -> str:
        return self.describe()


def check_plan(
    plan: ExecutionPlan, mode: str, n_qubits: int, n_ops: int
) -> None:
    """Guard an engine against running a mismatched plan.

    Raises ``ValueError`` when the plan's mode, width, or source gate
    count disagrees with the circuit/batch about to be executed — the
    failure modes of keying a cache wrongly.
    """
    if plan.mode != mode:
        raise ValueError(
            f"plan was compiled for {plan.mode!r} execution, not {mode!r}"
        )
    if plan.n_qubits != n_qubits:
        raise ValueError(
            f"plan acts on {plan.n_qubits} qubits, state has {n_qubits}"
        )
    if plan.n_source_ops != n_ops:
        raise ValueError(
            f"plan was compiled from {plan.n_source_ops} ops, circuit "
            f"has {n_ops}"
        )


# ---------------------------------------------------------------------------
# Adjoint lowering
# ---------------------------------------------------------------------------
#
# The backward sweep of adjoint differentiation reverse-replays the
# plan: starting from the forward output, it walks the steps in reverse,
# un-applying each one from a combined (ket + observable bras) stack and
# pausing at every trainable-gate boundary to contract the gate's
# generator between ket and bras.  Each forward step kind lowers to a
# backward twin that folds the per-step inverse in at lowering time
# (constant inverses and permutation inverse gathers precomputed;
# parameterized inverses fetched as conjugate transposes of the same
# prepared stacks the forward pass uses).  The combined stack carries
# ``(1 + T) * B`` rows — rows ``[0:B]`` the kets of the ``B`` batched
# circuits, rows ``[(1 + t) * B : (2 + t) * B]`` the bras of observable
# ``t`` — so one kernel application advances every circuit and every
# observable at once.  Backward steps run in the canonical axis order
# (``run_statevector`` restores it before returning), so the deferred
# forward layout needs no mirroring here.

def _tile_rows(matrices: np.ndarray, replicas: int) -> np.ndarray:
    """Repeat per-circuit ``(B, ...)`` stacks across the combined rows.

    Row ``r`` of the combined stack belongs to circuit ``r % B``, so a
    plain ``np.tile`` along axis 0 lines the matrices up; shared 2-D
    matrices broadcast as-is.
    """
    if matrices.ndim == 2:
        return matrices
    return np.tile(matrices, (replicas,) + (1,) * (matrices.ndim - 1))


def _adjoint_shift_spec(name: str) -> _gates.GateSpec:
    spec = _gates.get_gate(name)
    if not (spec.shift_rule and spec.generator is not None):
        raise ValueError(
            f"adjoint differentiation requires Pauli-rotation "
            f"trainable gates, got {name!r}"
        )
    return spec


class _AdjointMatmul:
    """Backward twin of a matmul-kind step (fused or constant block).

    Walks the block's factors in reverse, lazily composing their
    inverses into one ``pending`` matrix; at each trainable factor the
    pending inverse is flushed (bringing ket and bras exactly to that
    gate's boundary) and the factor's pre-embedded generator is
    contracted between them.  Blocks with no trainable factor collapse
    to a single inverse matmul.
    """

    def __init__(self, wires: tuple[int, ...], items: list):
        self._axes = [w + 1 for w in wires]
        self._items = items

    def _flush(self, combined, pending, replicas):
        return _apply.matmul_on_axes(
            combined, _tile_rows(pending, replicas), self._axes
        )

    def run(self, combined, batch, matrices, jacobian):
        replicas = combined.shape[0] // batch
        pending = None
        for item in self._items:
            kind = item[0]
            if kind == "const":
                inverse = item[1]
            elif kind == "param":
                inverse = matrices[item[1]].conj().swapaxes(-1, -2)
            else:  # "train"
                _, position, param_index, generator = item
                if pending is not None:
                    combined = self._flush(combined, pending, replicas)
                    pending = None
                ket = combined[:batch]
                g_ket = _apply.matmul_on_axes(ket, generator, self._axes)
                bras = combined[batch:].reshape(
                    (replicas - 1, batch) + ket.shape[1:]
                )
                overlaps = (
                    (bras.conj() * g_ket[None])
                    .reshape(replicas - 1, batch, -1)
                    .sum(axis=-1)
                )
                jacobian[:, :, param_index] += overlaps.imag
                inverse = matrices[position].conj().swapaxes(-1, -2)
            pending = (
                inverse if pending is None else np.matmul(inverse, pending)
            )
        if pending is not None:
            combined = self._flush(combined, pending, replicas)
        return combined


class _AdjointPermutation:
    """Backward twin of a permutation step: the inverse gather."""

    def __init__(self, wires: tuple[int, ...], source: np.ndarray):
        self._wires = wires
        self._inverse = np.argsort(source)

    def run(self, combined, batch, matrices, jacobian):
        return _apply.apply_permutation_batched(
            combined, self._inverse, self._wires
        )


class _AdjointDiag:
    """Backward twin of a diagonal block.

    Un-applying a unit-modulus diagonal multiplies ket and bras by the
    same conjugate factor, so ``conj(bra) * ket`` is invariant across
    the whole block — every trainable diagonal factor's generator
    contraction (a signed elementwise sum) can therefore be evaluated
    once at the block boundary before the single conjugate multiply
    that un-applies the block.
    """

    def __init__(self, step: DiagStep, contractions: list):
        self._step = step
        self._contractions = contractions

    def run(self, combined, batch, matrices, jacobian):
        if self._contractions:
            ket = combined[:batch]
            n_bras = combined.shape[0] // batch - 1
            bras = combined[batch:].reshape(
                (n_bras, batch) + ket.shape[1:]
            )
            weights = bras.conj() * ket[None]
            axes = [w + 2 for w in self._step.wires]
            for param_index, signs in self._contractions:
                factor = _apply._diag_to_axes(signs, axes, weights.ndim)
                overlaps = (
                    (weights * factor)
                    .reshape(n_bras, batch, -1)
                    .sum(axis=-1)
                )
                jacobian[:, :, param_index] += overlaps.imag
        diags = np.asarray(self._step.diags(matrices)).conj()
        if diags.ndim == 2:
            diags = np.tile(diags, (combined.shape[0] // batch, 1))
        return _apply.apply_diag_batched(
            combined, diags, self._step.wires
        )


class AdjointPlan:
    """The backward lowering of a statevector :class:`ExecutionPlan`.

    Built once per plan (see :meth:`ExecutionPlan.adjoint`); lowering
    validates that every trainable gate is a Pauli rotation and that no
    specialization swallowed a trainable-gate boundary, then records
    one backward step per forward step, in reverse order.

    :meth:`run` advances a combined ``((1 + T) * B,) + (2,) * n`` stack
    (ket rows first, then ``T`` observable-bra groups) from the forward
    output back to ``|0>``, accumulating generator contractions into a
    ``(T, B, n_params)`` Jacobian along the way.
    """

    def __init__(self, plan: ExecutionPlan):
        if plan.mode != "statevector":
            raise ValueError(
                "adjoint differentiation requires a statevector plan, "
                f"got {plan.mode!r}"
            )
        if plan.param_indices is None:
            raise ValueError(
                "plan was compiled without parameter-index metadata; "
                "recompile via compile_circuit to differentiate it"
            )
        self.plan = plan
        indices = plan.param_indices
        trainable = {
            position
            for position, index in enumerate(indices)
            if index is not None
        }
        covered: set[int] = set()
        steps: list = []
        for step in reversed(plan.steps):
            if isinstance(step, ConstantStep):
                steps.append(
                    _AdjointMatmul(
                        step.wires, [("const", step.matrix.conj().T)]
                    )
                )
            elif isinstance(step, FusedStep):
                items: list = []
                for factor in reversed(step.factors):
                    if factor.position is None:
                        items.append(("const", factor.matrix.conj().T))
                    elif indices[factor.position] is None:
                        items.append(("param", factor.position))
                    else:
                        spec = _adjoint_shift_spec(factor.name)
                        generator = _EMBEDDINGS[factor.embed](
                            _gates.pauli_word_matrix(spec.generator)
                        )
                        covered.add(factor.position)
                        items.append(
                            (
                                "train",
                                factor.position,
                                indices[factor.position],
                                generator,
                            )
                        )
                steps.append(_AdjointMatmul(step.wires, items))
            elif isinstance(step, PermutationStep):
                steps.append(_AdjointPermutation(step.wires, step.source))
            elif isinstance(step, DiagStep):
                contractions = []
                for op in step.ops:
                    if indices[op.position] is None:
                        continue
                    spec = _adjoint_shift_spec(op.name)
                    signs = np.real(
                        np.diagonal(
                            _gates.pauli_word_matrix(spec.generator)
                        )
                    )[op.jmap].copy()
                    covered.add(op.position)
                    contractions.append((indices[op.position], signs))
                steps.append(_AdjointDiag(step, contractions))
            else:
                raise ValueError(
                    f"cannot differentiate through a {step.kind!r} step"
                )
        if covered != trainable:
            missing = sorted(trainable - covered)
            raise RuntimeError(
                f"trainable gates at positions {missing} were folded "
                f"into non-differentiable steps; fusion must not "
                f"swallow a trainable gate"
            )
        self._steps = steps

    def run(
        self,
        combined: np.ndarray,
        batch: int,
        params,
        jacobian: np.ndarray,
    ) -> np.ndarray:
        """Reverse-replay the plan over a combined ket/bra stack.

        Args:
            combined: ``((1 + T) * B,) + (2,) * n`` tensor in canonical
                axis order — the forward output kets in rows ``[0:B]``
                and each observable's bras in the following ``B``-row
                groups.
            batch: ``B``, the number of batched circuits.
            params: The batch parameter source (``CircuitBatch`` or
                ``SingleCircuitParams``) the forward pass ran with.
            jacobian: ``(T, B, n_params)`` float64 accumulator; entry
                ``(t, b, i)`` receives ``d<O_t>/d theta_i`` of circuit
                ``b``, occurrences summed.

        Returns:
            The fully un-applied combined stack (ket rows back at
            ``|0>`` up to roundoff).
        """
        matrices = _prepare_matrices(
            self.plan._param_groups, self.plan.n_source_ops, params
        )
        for step in self._steps:
            combined = step.run(combined, batch, matrices, jacobian)
        return combined


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class _Op:
    """Compiler-internal view of one source operation."""

    position: int
    name: str
    wires: tuple[int, ...]
    parameterized: bool
    diagonal: bool


class _Block:
    """An open fusion block accumulating adjacent ops."""

    __slots__ = ("wires", "ops")

    def __init__(self, op: _Op):
        self.wires: list[int] = list(op.wires)
        self.ops: list[_Op] = [op]

    def add(self, op: _Op) -> None:
        self.ops.append(op)
        for wire in op.wires:
            if wire not in self.wires:
                self.wires.append(wire)


def _expand_map(axes: tuple[int, ...], k: int) -> np.ndarray:
    """Gather map expanding a local diagonal to the block's joint index.

    ``axes`` are the op's local wire axes within a ``k``-wire block (in
    gate wire order, most significant first); ``out[i]`` is the op-local
    index whose bits are ``i``'s bits at those axes.
    """
    m = len(axes)
    jmap = np.empty(2**k, dtype=np.intp)
    for i in range(2**k):
        j = 0
        for t, axis in enumerate(axes):
            j |= ((i >> (k - 1 - axis)) & 1) << (m - 1 - t)
        jmap[i] = j
    return jmap


def _is_exact_diagonal(matrix: np.ndarray) -> bool:
    off = matrix[~np.eye(matrix.shape[0], dtype=bool)]
    return bool(np.all(off == 0))


def _is_exact_permutation(matrix: np.ndarray) -> bool:
    if not np.all((matrix == 0) | (matrix == 1)):
        return False
    ones = matrix == 1
    return bool(
        np.all(ones.sum(axis=0) == 1) and np.all(ones.sum(axis=1) == 1)
    )


def _block_axes(block: _Block, op: _Op) -> tuple[int, ...]:
    return tuple(block.wires.index(w) for w in op.wires)


def _compose_constant(block: _Block) -> np.ndarray:
    """Fold a parameterless block into one matrix at compile time."""
    k = len(block.wires)
    dim = 2**k
    acc = np.eye(dim, dtype=np.complex128).reshape((1,) + (2,) * k + (dim,))
    for op in block.ops:
        matrix = _gates.fixed_gate_matrix(op.name)
        acc = _apply.matmul_on_axes(
            acc, matrix, [a + 1 for a in _block_axes(block, op)]
        )
    return acc.reshape(dim, dim)


def _finalize_block(block: _Block):
    """Lower one closed block to its most specialized step (or None).

    Parameterless blocks fold to a constant, then classify: an exact
    identity is dropped entirely, exact permutations become index
    takes, exact diagonals become elementwise multiplies, the rest one
    shared GEMM.  Parameterized blocks stay diagonal only when every
    member is registry-tagged diagonal.
    """
    wires = tuple(block.wires)
    k = len(wires)
    if all(not op.parameterized for op in block.ops):
        matrix = _compose_constant(block)
        if np.array_equal(matrix, np.eye(2**k)):
            return None
        if _is_exact_permutation(matrix):
            source = np.array(
                [int(np.nonzero(row)[0][0]) for row in matrix],
                dtype=np.intp,
            )
            return PermutationStep(wires, source)
        if _is_exact_diagonal(matrix):
            return DiagStep(wires, np.diagonal(matrix).copy(), [])
        return ConstantStep(wires, matrix)
    if all(op.diagonal for op in block.ops):
        constant = None
        diag_ops = []
        for op in block.ops:
            jmap = _expand_map(_block_axes(block, op), k)
            if op.parameterized:
                diag_ops.append(_DiagOp(op.name, jmap, op.position))
            else:
                d = np.diagonal(_gates.fixed_gate_matrix(op.name))[jmap]
                constant = d if constant is None else constant * d
        return DiagStep(wires, constant, diag_ops)
    factors = []
    for op in block.ops:
        embed = _embed_tag(_block_axes(block, op), k)
        if op.parameterized:
            factors.append(
                _Factor(name=op.name, position=op.position, embed=embed)
            )
        else:
            matrix = _EMBEDDINGS[embed](_gates.fixed_gate_matrix(op.name))
            factors.append(_Factor(matrix=matrix))
    return FusedStep(wires, _fold_factors(factors))


def _partition_unitary(ops: list[_Op], fuse_max: int) -> list[_Block]:
    """Greedy multi-open-block fusion of a noise-free op sequence.

    A gate joins the *deepest* open block that shares any of its wires
    (provided the union support stays within ``fuse_max``); every block
    opened later is then guaranteed disjoint from the gate's wires, so
    the emission reorder only ever commutes disjoint-support gates.
    When the union would exceed ``fuse_max``, that block and everything
    opened before it are emitted and a fresh block starts.
    """
    open_blocks: list[_Block] = []
    emitted: list[_Block] = []
    for op in ops:
        wires = set(op.wires)
        deepest = None
        for index in range(len(open_blocks) - 1, -1, -1):
            if wires & set(open_blocks[index].wires):
                deepest = index
                break
        if deepest is not None:
            union = set(open_blocks[deepest].wires) | wires
            if len(union) <= fuse_max:
                open_blocks[deepest].add(op)
                continue
            emitted.extend(open_blocks[: deepest + 1])
            del open_blocks[: deepest + 1]
        open_blocks.append(_Block(op))
    emitted.extend(open_blocks)
    return emitted


def _merge_adjacent_blocks(
    blocks: list[_Block], fuse_max: int
) -> list[_Block]:
    """Greedily merge neighbouring blocks whose union support fits.

    Emitted blocks execute back to back in order, so concatenating an
    adjacent pair preserves the op sequence exactly — this catches
    disjoint-wire neighbours (a layer of single-qubit gates) that the
    intersection-driven partition left apart.
    """
    merged: list[_Block] = []
    for block in blocks:
        if (
            merged
            and len(set(merged[-1].wires) | set(block.wires)) <= fuse_max
        ):
            for op in block.ops:
                merged[-1].add(op)
        else:
            merged.append(block)
    return merged


def _compile_unitary(ops: list[_Op], fuse_max: int) -> list:
    steps = []
    blocks = _merge_adjacent_blocks(
        _partition_unitary(ops, fuse_max), fuse_max
    )
    for block in blocks:
        step = _finalize_block(block)
        if step is not None:
            steps.append(step)
    return steps


#: Merged diagonal / permutation steps never outgrow this support —
#: bounds the fused lookup table at 2^8 entries while still collapsing
#: whole entangling rings into one elementwise pass.
_MERGE_MAX = 8


def _merge_diag(a: DiagStep, b: DiagStep) -> DiagStep:
    """Fuse two adjacent diagonal steps over their union support."""
    wires = list(a.wires)
    for wire in b.wires:
        if wire not in wires:
            wires.append(wire)
    k = len(wires)
    constant = None
    ops: list[_DiagOp] = []
    for step in (a, b):
        axes = tuple(wires.index(w) for w in step.wires)
        jmap = _expand_map(axes, k)
        if step.constant is not None:
            expanded = step.constant[jmap]
            constant = (
                expanded if constant is None else constant * expanded
            )
        for op in step.ops:
            ops.append(_DiagOp(op.name, op.jmap[jmap], op.position))
    return DiagStep(tuple(wires), constant, ops)


def _merge_permutation(
    a: PermutationStep, b: PermutationStep
) -> PermutationStep:
    """Fuse two adjacent permutation steps over their union support."""
    wires = list(a.wires)
    for wire in b.wires:
        if wire not in wires:
            wires.append(wire)
    k = len(wires)
    full = []
    for step in (a, b):
        axes = tuple(wires.index(w) for w in step.wires)
        jmap = _expand_map(axes, k)
        # Lift step.source to the union index space: replace the
        # step's local bits of each index with their permuted values.
        lifted = np.empty(2**k, dtype=np.intp)
        m = len(step.wires)
        for i in range(2**k):
            local = int(step.source[jmap[i]])
            out = i
            for t, axis in enumerate(axes):
                bit = (local >> (m - 1 - t)) & 1
                shift = k - 1 - axis
                out = (out & ~(1 << shift)) | (bit << shift)
            lifted[i] = out
        full.append(lifted)
    # a then b: out[i] = in[a_src[b_src[i]]].
    return PermutationStep(tuple(wires), full[0][full[1]])


def _merge_adjacent(steps: list) -> list:
    """Fuse runs of adjacent diagonal / permutation steps.

    Adjacent steps execute back to back, so merging them never reorders
    anything — the only cost is the merged step's wider lookup table,
    capped at ``_MERGE_MAX`` wires.
    """
    out: list = []
    for step in steps:
        previous = out[-1] if out else None
        if (
            isinstance(step, DiagStep)
            and isinstance(previous, DiagStep)
            and len(set(previous.wires) | set(step.wires)) <= _MERGE_MAX
        ):
            out[-1] = _merge_diag(previous, step)
        elif (
            isinstance(step, PermutationStep)
            and isinstance(previous, PermutationStep)
            and len(set(previous.wires) | set(step.wires)) <= _MERGE_MAX
        ):
            out[-1] = _merge_permutation(previous, step)
        else:
            out.append(step)
    return out


def _compile_noisy_superop(
    ops: list[_Op], superops: list[np.ndarray | None], fuse_max: int
) -> list:
    """Wire-chain lowering of a noisy op sequence (density mode).

    Single-qubit gates and their trailing channels accumulate into
    per-wire chains (one superoperator application per wire per
    segment); multi-qubit gates flush the chains on their wires, emit
    their own specialized step, and seed fresh chains with their
    channels.  Chains on untouched wires stay open across other wires'
    activity — a reorder that only ever commutes disjoint-support
    operations.
    """
    steps: list = []
    chains: "OrderedDict[int, list[_Factor]]" = OrderedDict()

    def flush(wire: int) -> None:
        factors = chains.pop(wire, None)
        if factors:
            steps.append(WireChainStep(wire, _fold_factors(factors)))

    for op, superop in zip(ops, superops):
        if len(op.wires) == 1:
            wire = op.wires[0]
            chain = chains.setdefault(wire, [])
            if op.parameterized:
                chain.append(
                    _Factor(
                        name=op.name, position=op.position, embed="kron"
                    )
                )
            else:
                matrix = _gates.fixed_gate_matrix(op.name)
                chain.append(_Factor(matrix=_kron_conj(matrix)))
            if superop is not None:
                chain.append(_Factor(matrix=superop))
        else:
            for wire in op.wires:
                flush(wire)
            step = _finalize_block(_Block(op))
            if step is not None:
                steps.append(step)
            if superop is not None:
                for wire in op.wires:
                    chains.setdefault(wire, []).append(
                        _Factor(matrix=superop)
                    )
    for wire in list(chains):
        flush(wire)
    return steps


def _compile_noisy_kraus(ops: list[_Op], noise_model) -> list:
    """Per-gate lowering for generic Kraus-only noise models.

    No fusion: the exact gate/channel interleaving of the sequential
    path is preserved, each gate becoming its own (still specialized)
    single-op step.
    """
    steps: list = []
    for op in ops:
        step = _finalize_block(_Block(op))
        if step is not None:
            steps.append(step)
        for kraus_ops, wires in noise_model.channels_for(
            _TemplateView(op.name, op.wires)
        ):
            steps.append(KrausStep(tuple(wires), tuple(kraus_ops)))
    return steps


@dataclasses.dataclass(frozen=True)
class _TemplateView:
    """The (name, wires) view noise-model lookups need."""

    name: str
    wires: tuple[int, ...]


def compile_circuit(
    circuit,
    mode: str = "statevector",
    noise_model=None,
    fuse_max: int = FUSE_MAX,
) -> ExecutionPlan:
    """Lower a circuit's structure into an :class:`ExecutionPlan`.

    Args:
        circuit: A representative :class:`~repro.circuits.
            QuantumCircuit`; only its structure (gate names, wires,
            which ops carry parameters) is read — angle values never
            enter the plan, so the plan serves every circuit sharing
            the representative's ``structure_signature``.
        mode: ``"statevector"`` or ``"density"``.
        noise_model: Optional noise model (density mode only); its
            per-gate channels are baked in as precomposed superoperator
            steps (or generic Kraus steps when the model offers no
            ``superop_for``).  The plan is only valid for this exact
            model — cache accordingly.
        fuse_max: Maximum combined wire support of a fused block
            (1..2; larger blocks would need generic embeddings).

    Returns:
        The compiled plan.
    """
    if mode not in ("statevector", "density"):
        raise ValueError("mode must be 'statevector' or 'density'")
    if noise_model is not None and mode != "density":
        raise ValueError("noise models require density mode")
    if not 1 <= fuse_max <= 2:
        raise ValueError("fuse_max must be 1 or 2")
    ops = []
    for position, template in enumerate(circuit.templates):
        spec = _gates.get_gate(template.name)
        ops.append(
            _Op(
                position=position,
                name=spec.name,
                wires=tuple(template.wires),
                parameterized=spec.num_params > 0,
                diagonal=spec.diagonal,
            )
        )

    if noise_model is None:
        steps = _compile_unitary(ops, fuse_max)
    else:
        fast = getattr(noise_model, "superop_for", None)
        if fast is None:
            steps = _compile_noisy_kraus(ops, noise_model)
        else:
            superops = [
                fast(_TemplateView(op.name, op.wires)) for op in ops
            ]
            if all(s is None for s in superops):
                # Noise-free model (scale 0): full unitary fusion.
                steps = _compile_unitary(ops, fuse_max)
            else:
                steps = _compile_noisy_superop(ops, superops, fuse_max)
    steps = _merge_adjacent(steps)
    return ExecutionPlan(
        n_qubits=circuit.n_qubits,
        mode=mode,
        steps=steps,
        n_source_ops=len(ops),
        param_indices=tuple(
            template.param_index for template in circuit.templates
        ),
    )


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------

class PlanCache:
    """Thread-safe LRU with hit/miss counters.

    Backends key it by :meth:`~repro.circuits.QuantumCircuit.
    structure_signature` (which embeds the qubit count); each backend
    owns its own cache, so the noise-model / layout identity of the
    full cache key is carried by the owner rather than hashed into
    every lookup.  Also reused as the :class:`~repro.hardware.
    NoisyBackend` transpile cache (fingerprint-keyed) — it is a plain
    value LRU.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = int(maxsize)
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key):
        """Look up a key; counts a hit or miss.  ``None`` when absent."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return None

    def put(self, key, value) -> None:
        """Insert (or refresh) an entry, evicting the least recent."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def get_or_compile(self, key, builder: Callable[[], object]):
        """Return the cached value, building and caching on a miss.

        The builder runs outside the lock — two racing threads may both
        compile, but plans are pure values so the duplicate work is
        harmless and the lock never blocks on compilation.
        """
        value = self.get(key)
        if value is None:
            value = builder()
            self.put(key, value)
        return value

    def stats(self) -> dict:
        """Counters snapshot: hits, misses, hit_rate, size, maxsize."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": self._hits / total if total else 0.0,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }

    def clear(self) -> None:
        """Drop all entries and zero the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
