"""Quantum state simulation substrate (statevector + density matrix)."""

from repro.sim.adjoint import adjoint_expectation_and_jacobian, adjoint_jacobian
from repro.sim.apply import (
    apply_kraus_to_density,
    apply_kraus_to_density_batched,
    apply_matrix,
    apply_matrix_batched,
    apply_matrix_to_density,
    apply_matrix_to_density_batched,
    apply_superop_to_density,
    apply_superop_to_density_batched,
    expand_matrix,
    kraus_to_superop,
)
from repro.sim.batched import BatchedStatevector, run_circuit_batch
from repro.sim.batched_density import BatchedDensityMatrix, run_density_batch
from repro.sim.density import DensityMatrix
from repro.sim.gates import (
    GATES,
    SHIFT_RULE_GATES,
    GateSpec,
    fixed_gate_matrix,
    get_gate,
    stacked_matrices,
)
from repro.sim.measurement import (
    apply_readout_error,
    apply_readout_error_batch,
    counts_to_probabilities,
    expectation_z_from_counts,
    expectation_z_from_prob_matrix,
    expectation_z_from_probabilities,
    readout_confusion_matrix,
    sample_counts_batch,
    sample_from_probabilities,
)
from repro.sim.statevector import Statevector, run_statevector

__all__ = [
    "GATES",
    "SHIFT_RULE_GATES",
    "BatchedDensityMatrix",
    "BatchedStatevector",
    "DensityMatrix",
    "GateSpec",
    "Statevector",
    "adjoint_expectation_and_jacobian",
    "adjoint_jacobian",
    "apply_kraus_to_density",
    "apply_kraus_to_density_batched",
    "apply_matrix",
    "apply_matrix_batched",
    "apply_matrix_to_density",
    "apply_matrix_to_density_batched",
    "apply_readout_error",
    "apply_readout_error_batch",
    "apply_superop_to_density",
    "apply_superop_to_density_batched",
    "counts_to_probabilities",
    "expand_matrix",
    "expectation_z_from_counts",
    "expectation_z_from_prob_matrix",
    "expectation_z_from_probabilities",
    "fixed_gate_matrix",
    "get_gate",
    "kraus_to_superop",
    "readout_confusion_matrix",
    "run_circuit_batch",
    "run_density_batch",
    "run_statevector",
    "sample_counts_batch",
    "sample_from_probabilities",
    "stacked_matrices",
]
