"""Synthetic stand-ins for MNIST, Fashion-MNIST, and the vowel dataset.

This environment has no network access, so the paper's datasets are
replaced by procedural generators that preserve everything the experiment
pipeline actually consumes:

* **images**: 28x28 grayscale rasters with digit-like / garment-like
  class structure.  Each class has a 4x4 intensity prototype (the QNN only
  ever sees the 4x4 average-pooled image); samples are produced by cell
  jitter, upsampling, smoothing, random translation, intensity scaling,
  and pixel noise — so the crop/pool/encode path is exercised end to end
  and classes are separable-but-not-trivially (the noise-free QNN reaches
  accuracies in the paper's reported range, not 100%).
* **vowels**: formant-based feature vectors (Peterson/Hillenbrand-style
  F0-F3 steady-state + onset/offset values + duration and energy) with
  per-speaker scaling, followed by the paper's PCA-to-10-dims step.

Every generator takes an explicit seed and is fully deterministic.
"""

from __future__ import annotations

import numpy as np

# ---------------------------------------------------------------------------
# 4x4 class prototypes
# ---------------------------------------------------------------------------

_DIGIT_PROTOTYPES: dict[int, list[str]] = {
    0: ["1111", "1001", "1001", "1111"],
    1: ["0110", "0110", "0110", "0110"],
    2: ["1110", "0010", "0100", "1111"],
    3: ["1111", "0011", "0011", "1111"],
    4: ["1001", "1111", "0001", "0001"],
    5: ["1111", "1000", "0111", "1110"],
    6: ["0111", "1000", "1111", "1111"],
    7: ["1111", "0001", "0010", "0100"],
    8: ["1111", "1111", "1001", "1111"],
    9: ["1111", "1011", "0001", "0111"],
}

#: Fashion-MNIST class indices used by the paper:
#: 0 t-shirt/top, 1 trouser, 2 pullover, 3 dress, 6 shirt.
_FASHION_PROTOTYPES: dict[int, list[str]] = {
    0: ["1111", "0110", "0110", "0110"],  # t-shirt/top
    1: ["1111", "1001", "1001", "1001"],  # trouser
    2: ["1111", "1111", "1111", "0110"],  # pullover
    3: ["0110", "0110", "1111", "1111"],  # dress
    6: ["1111", "1010", "0101", "0110"],  # shirt
}


def _prototype_array(rows: list[str]) -> np.ndarray:
    return np.array(
        [[float(ch) for ch in row] for row in rows], dtype=np.float64
    )


def _smooth(image: np.ndarray) -> np.ndarray:
    """3x3 box blur with edge padding (keeps shape)."""
    padded = np.pad(image, 1, mode="edge")
    out = np.zeros_like(image)
    for dr in range(3):
        for dc in range(3):
            out += padded[dr:dr + image.shape[0], dc:dc + image.shape[1]]
    return out / 9.0


def _render_sample(
    prototype: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """One 28x28 sample from a 4x4 prototype.

    Variation is deliberately aggressive — cell dropout, spurious strokes,
    translation, intensity drift, pixel noise — so that noise-free QNN
    accuracy lands in the paper's reported bands (~0.88 for 2-class,
    ~0.6-0.73 for 4-class) rather than saturating.
    """
    # Per-cell jitter keeps within-class variation non-trivial.
    jittered = prototype * rng.uniform(0.45, 1.1, size=prototype.shape)
    jittered += rng.uniform(0.0, 0.20, size=prototype.shape)
    # Stroke dropout and spurious strokes blur class boundaries.
    dropout = rng.random(prototype.shape) < 0.08
    jittered[dropout & (prototype > 0.5)] = rng.uniform(0.0, 0.3)
    spurious = rng.random(prototype.shape) < 0.08
    jittered[spurious & (prototype < 0.5)] = rng.uniform(0.5, 0.9)
    # Upsample 4x4 -> 24x24 and blur to get stroke-like edges.
    big = np.kron(jittered, np.ones((6, 6)))
    big = _smooth(_smooth(big))
    # Random placement inside the 28x28 canvas (center +/- 3 px).
    canvas = np.zeros((28, 28), dtype=np.float64)
    row0 = 2 + int(rng.integers(-2, 3))
    col0 = 2 + int(rng.integers(-2, 3))
    canvas[row0:row0 + 24, col0:col0 + 24] = big
    # Global intensity variation + pixel noise.
    canvas *= rng.uniform(0.55, 1.0)
    canvas += rng.normal(0.0, 0.10, size=canvas.shape)
    return np.clip(canvas, 0.0, 1.0)


def _make_image_dataset(
    prototypes: dict[int, np.ndarray],
    classes: list[int],
    n_samples: int,
    seed: int,
) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    images = np.empty((n_samples, 28, 28), dtype=np.float64)
    labels = np.empty(n_samples, dtype=np.int64)
    for index in range(n_samples):
        class_pos = index % len(classes)
        source_class = classes[class_pos]
        images[index] = _render_sample(prototypes[source_class], rng)
        labels[index] = class_pos
    # Shuffle so mini-batches are class-mixed from the start.
    order = rng.permutation(n_samples)
    return images[order], labels[order]


def make_mnist_like(
    classes: list[int], n_samples: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Digit-like 28x28 images for the given MNIST class list.

    Labels are re-indexed to ``0..len(classes)-1`` in the order given
    (e.g. ``classes=[3, 6]`` gives the paper's MNIST-2 task with labels
    {0, 1}).

    Returns:
        ``(images, labels)`` with shapes ``(n, 28, 28)`` and ``(n,)``.
    """
    unknown = set(classes) - set(_DIGIT_PROTOTYPES)
    if unknown:
        raise ValueError(f"unknown digit classes {sorted(unknown)}")
    if n_samples < len(classes):
        raise ValueError("need at least one sample per class")
    prototypes = {c: _prototype_array(_DIGIT_PROTOTYPES[c]) for c in classes}
    return _make_image_dataset(prototypes, classes, n_samples, seed)


def make_fashion_like(
    classes: list[int], n_samples: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Garment-like 28x28 images for the given Fashion-MNIST classes.

    Paper tasks: 4-class = [0, 1, 2, 3] (t-shirt/top, trouser, pullover,
    dress); 2-class = [3, 6] (dress, shirt).
    """
    unknown = set(classes) - set(_FASHION_PROTOTYPES)
    if unknown:
        raise ValueError(f"unknown fashion classes {sorted(unknown)}")
    if n_samples < len(classes):
        raise ValueError("need at least one sample per class")
    prototypes = {
        c: _prototype_array(_FASHION_PROTOTYPES[c]) for c in classes
    }
    return _make_image_dataset(prototypes, classes, n_samples, seed)


# ---------------------------------------------------------------------------
# Vowel formant data
# ---------------------------------------------------------------------------

#: Steady-state formant means (Hz) per vowel, Hillenbrand-style values for
#: the paper's four classes: hid /i/, hId /I/, had /ae/, hOd /A/.
_VOWEL_FORMANTS: dict[str, tuple[float, float, float, float]] = {
    "hid": (130.0, 342.0, 2322.0, 3000.0),   # (F0, F1, F2, F3)
    "hId": (125.0, 427.0, 2034.0, 2684.0),
    "had": (120.0, 588.0, 1952.0, 2601.0),
    "hOd": (122.0, 768.0, 1333.0, 2522.0),
}

VOWEL_CLASSES = tuple(_VOWEL_FORMANTS)


def make_vowel_raw(
    n_samples: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Raw 12-dimensional vowel feature vectors.

    Features per sample: duration (ms), F0, steady F1-F3, F1-F3 at 20% of
    the vowel, F1-F3 at 80%, and RMS energy — the measurement set of the
    Hillenbrand corpus.  Inter-speaker variation is modelled as a shared
    vocal-tract scale factor; intra-speaker variation as per-feature noise.

    Returns:
        ``(features, labels)`` with shapes ``(n, 12)`` and ``(n,)``;
        labels index :data:`VOWEL_CLASSES`.
    """
    if n_samples < len(VOWEL_CLASSES):
        raise ValueError("need at least one sample per class")
    rng = np.random.default_rng(seed)
    features = np.empty((n_samples, 12), dtype=np.float64)
    labels = np.empty(n_samples, dtype=np.int64)
    for index in range(n_samples):
        label = index % len(VOWEL_CLASSES)
        f0, f1, f2, f3 = _VOWEL_FORMANTS[VOWEL_CLASSES[label]]
        # Speaker vocal-tract scaling (men/women/children spread).
        scale = rng.uniform(0.85, 1.25)
        f0_s = f0 * rng.uniform(0.8, 1.9)  # F0 varies more than formants
        f1_s = f1 * scale * rng.normal(1.0, 0.06)
        f2_s = f2 * scale * rng.normal(1.0, 0.05)
        f3_s = f3 * scale * rng.normal(1.0, 0.05)
        duration = rng.normal(240.0, 40.0)
        energy = rng.normal(70.0, 6.0)
        onset_factor = rng.normal(0.95, 0.03)
        offset_factor = rng.normal(1.04, 0.03)
        features[index] = [
            duration,
            f0_s,
            f1_s, f2_s, f3_s,
            f1_s * onset_factor, f2_s * onset_factor, f3_s * onset_factor,
            f1_s * offset_factor, f2_s * offset_factor, f3_s * offset_factor,
            energy,
        ]
        labels[index] = label
    order = rng.permutation(n_samples)
    return features[order], labels[order]
