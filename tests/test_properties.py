"""Cross-module property-based tests (hypothesis).

Randomized invariants that tie subsystems together: simulator agreement,
shift-rule exactness on arbitrary layered circuits, channel physicality
under composition, and pruning accounting under arbitrary schedules.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, build_layered_ansatz
from repro.gradients import parameter_shift_jacobian
from repro.hardware import IdealBackend
from repro.noise import noise_model_for
from repro.pruning import GradientPruner, PruningHyperparams
from repro.sim import DensityMatrix, Statevector, adjoint_jacobian

LAYERS = st.lists(
    st.sampled_from(["rx", "ry", "rz", "rzz", "rxx", "rzx", "cz"]),
    min_size=1, max_size=5,
)


def random_bound_ansatz(layers, seed, n_qubits=3):
    circuit = build_layered_ansatz(n_qubits, layers)
    rng = np.random.default_rng(seed)
    if circuit.num_parameters:
        circuit.bind(rng.uniform(-np.pi, np.pi, circuit.num_parameters))
    return circuit


class TestSimulatorAgreement:
    @given(layers=LAYERS, seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_density_matches_statevector_on_pure_circuits(
        self, layers, seed
    ):
        circuit = random_bound_ansatz(layers, seed)
        sv = Statevector(3).evolve(circuit)
        dm = DensityMatrix(3).evolve(circuit)
        assert np.allclose(
            dm.probabilities(), sv.probabilities(), atol=1e-10
        )
        assert np.allclose(
            dm.expectation_z(), sv.expectation_z(), atol=1e-10
        )

    @given(layers=LAYERS, seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_noisy_evolution_stays_physical(self, layers, seed):
        """Trace 1, expectations in [-1, 1], purity in (0, 1]."""
        circuit = random_bound_ansatz(layers, seed)
        model = noise_model_for("ibmq_jakarta")
        rho = DensityMatrix(3).evolve(circuit, model)
        assert np.isclose(rho.trace(), 1.0, atol=1e-8)
        assert np.all(np.abs(rho.expectation_z()) <= 1.0 + 1e-9)
        assert 0.0 < rho.purity() <= 1.0 + 1e-9

    @given(layers=LAYERS, seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_noise_never_increases_purity(self, layers, seed):
        circuit = random_bound_ansatz(layers, seed)
        clean = DensityMatrix(3).evolve(circuit)
        noisy = DensityMatrix(3).evolve(
            circuit, noise_model_for("ibmq_lima")
        )
        assert noisy.purity() <= clean.purity() + 1e-9


class TestShiftRuleExactness:
    @given(layers=LAYERS, seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_parameter_shift_equals_adjoint_everywhere(self, layers, seed):
        circuit = random_bound_ansatz(layers, seed)
        if circuit.num_parameters == 0:
            return
        shift = parameter_shift_jacobian(circuit, IdealBackend(exact=True))
        adjoint = adjoint_jacobian(circuit)
        assert np.allclose(shift, adjoint, atol=1e-11)

    @given(
        theta=st.floats(min_value=-2 * np.pi, max_value=2 * np.pi),
        offset=st.floats(min_value=-1.0, max_value=1.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_shift_invariance_under_reparameterization(self, theta, offset):
        """Shifting a gate occurrence == shifting the bound parameter."""
        circuit = QuantumCircuit(1)
        circuit.add_trainable("ry", 0, 0)
        circuit.bind([theta])
        shifted_occurrence = circuit.shifted(0, offset)
        rebound = circuit.bound([theta + offset])
        sv_a = Statevector(1).evolve(shifted_occurrence)
        sv_b = Statevector(1).evolve(rebound)
        assert np.isclose(sv_a.fidelity(sv_b), 1.0, atol=1e-12)


class TestPrunerAccounting:
    @given(
        wa=st.integers(1, 4),
        wp=st.integers(0, 4),
        ratio=st.floats(min_value=0.0, max_value=0.9),
        n_params=st.integers(2, 30),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_savings_bounded_by_formula(self, wa, wp, ratio, n_params, seed):
        """Empirical savings never exceed the theoretical fraction by
        more than one keep-count rounding step."""
        hyper = PruningHyperparams(wa, wp, ratio)
        pruner = GradientPruner(n_params, hyper, seed=seed)
        rng = np.random.default_rng(seed)
        stages = 3
        for _ in range(stages * hyper.stage_length):
            pruner.select()
            pruner.observe(rng.uniform(0, 1, n_params))
        rounding_slack = 1.0 / n_params + 1e-9
        assert (
            abs(pruner.empirical_savings - hyper.time_saved_fraction)
            <= hyper.pruning_window / hyper.stage_length * rounding_slack
            + 1e-9
        )

    @given(
        ratio=st.floats(min_value=0.05, max_value=0.95),
        n_params=st.integers(2, 50),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_selection_counts_exact(self, ratio, n_params, seed):
        from repro.pruning import keep_count, probabilistic_subset

        rng = np.random.default_rng(seed)
        magnitudes = rng.uniform(0, 1, n_params)
        subset = probabilistic_subset(magnitudes, ratio, rng)
        assert subset.size == keep_count(n_params, ratio)


class TestEncoderRoundTrip:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_distinct_inputs_distinct_states(self, seed):
        from repro.circuits import encode_image16

        rng = np.random.default_rng(seed)
        x_a = rng.uniform(0.2, np.pi - 0.2, 16)
        x_b = x_a + rng.uniform(0.3, 0.6, 16)
        sv_a = Statevector(4).evolve(encode_image16(x_a))
        sv_b = Statevector(4).evolve(encode_image16(np.clip(x_b, 0, np.pi)))
        assert sv_a.fidelity(sv_b) < 1.0 - 1e-6
