"""Tests for backends, metering, jobs, and the provider."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, get_architecture
from repro.hardware import (
    IdealBackend,
    Job,
    JobError,
    JobStatus,
    NoisyBackend,
    QuantumProvider,
    submit_job,
)


def bell_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(2)
    circuit.add("h", 0).add("cx", (0, 1))
    return circuit


def ry_circuit(theta: float) -> QuantumCircuit:
    circuit = QuantumCircuit(1)
    circuit.add("ry", 0, theta)
    return circuit


class TestIdealBackend:
    def test_exact_expectations(self):
        backend = IdealBackend(exact=True)
        exp = backend.expectations([ry_circuit(0.8)], shots=1)[0]
        assert np.isclose(exp[0], np.cos(0.8))

    def test_exact_returns_no_counts(self):
        backend = IdealBackend(exact=True)
        result = backend.run([bell_circuit()])[0]
        assert result.counts == {}
        assert result.shots == 0

    def test_sampled_mode_has_shot_noise(self):
        backend = IdealBackend(exact=False, seed=0)
        exp = backend.expectations([ry_circuit(0.8)], shots=256)[0]
        assert abs(exp[0] - np.cos(0.8)) > 1e-6  # not exact
        assert abs(exp[0] - np.cos(0.8)) < 0.2   # but close

    def test_sampled_reproducible_with_seed(self):
        first = IdealBackend(exact=False, seed=42).expectations(
            [bell_circuit()], shots=128
        )
        second = IdealBackend(exact=False, seed=42).expectations(
            [bell_circuit()], shots=128
        )
        assert np.allclose(first, second)

    def test_invalid_circuit_rejected_before_run(self):
        backend = IdealBackend()
        bad = QuantumCircuit(1, num_parameters=1)  # unused parameter
        with pytest.raises(ValueError, match="never used"):
            backend.run([bad])

    def test_zero_shots_accepted_in_exact_mode(self):
        # Exact execution ignores shots and reports shots=0 results;
        # rejecting an explicit shots=0 contradicted that accounting.
        backend = IdealBackend(exact=True)
        results = backend.run([bell_circuit()], shots=0)
        assert results[0].shots == 0
        assert backend.meter.shots == 0

    def test_zero_shots_rejected_on_sampling_backends(self):
        with pytest.raises(ValueError, match="shots"):
            IdealBackend(exact=False).run([bell_circuit()], shots=0)
        with pytest.raises(ValueError, match="shots"):
            NoisyBackend.from_device_name("ibmq_santiago").run(
                [bell_circuit()], shots=0
            )

    def test_negative_shots_rejected_everywhere(self):
        with pytest.raises(ValueError, match="shots"):
            IdealBackend(exact=True).run([bell_circuit()], shots=-1)
        with pytest.raises(ValueError, match="shots"):
            IdealBackend(exact=False).run([bell_circuit()], shots=-1)


class TestMeter:
    def test_counts_circuits_and_shots(self):
        backend = IdealBackend(exact=False, seed=0)
        backend.run([bell_circuit()] * 3, shots=100, purpose="forward")
        backend.run([bell_circuit()] * 2, shots=50, purpose="gradient")
        assert backend.meter.circuits == 5
        assert backend.meter.shots == 3 * 100 + 2 * 50
        assert backend.meter.by_purpose == {"forward": 3, "gradient": 2}

    def test_reset(self):
        backend = IdealBackend()
        backend.run([bell_circuit()])
        backend.meter.reset()
        assert backend.meter.circuits == 0
        assert backend.meter.by_purpose == {}

    def test_snapshot_is_detached(self):
        backend = IdealBackend()
        backend.run([bell_circuit()])
        snapshot = backend.meter.snapshot()
        backend.run([bell_circuit()])
        assert snapshot["circuits"] == 1

    def test_shots_accounted_per_purpose(self):
        backend = IdealBackend(exact=False, seed=0)
        backend.run([bell_circuit()] * 3, shots=100, purpose="forward")
        backend.run([bell_circuit()] * 2, shots=50, purpose="gradient")
        assert backend.meter.shots_by_purpose == {
            "forward": 300, "gradient": 100,
        }

    def test_exact_mode_meters_zero_shots_per_purpose(self):
        backend = IdealBackend(exact=True)
        backend.run([bell_circuit()], purpose="forward")
        assert backend.meter.by_purpose == {"forward": 1}
        assert backend.meter.shots_by_purpose == {"forward": 0}

    def test_diff_reports_window_delta(self):
        backend = IdealBackend(exact=False, seed=0)
        backend.run([bell_circuit()] * 2, shots=10, purpose="forward")
        window_start = backend.meter.snapshot()
        backend.run([bell_circuit()] * 3, shots=20, purpose="gradient")
        backend.run([bell_circuit()], shots=10, purpose="forward")
        delta = backend.meter.diff(window_start)
        assert delta == {
            "circuits": 4,
            "shots": 70,
            "by_purpose": {"gradient": 3, "forward": 1},
            "shots_by_purpose": {"gradient": 60, "forward": 10},
        }

    def test_diff_omits_zero_purposes(self):
        backend = IdealBackend(exact=False, seed=0)
        backend.run([bell_circuit()], shots=10, purpose="forward")
        window_start = backend.meter.snapshot()
        backend.run([bell_circuit()], shots=10, purpose="gradient")
        delta = backend.meter.diff(window_start)
        assert "forward" not in delta["by_purpose"]

    def test_diff_clamps_negative_deltas_after_reset(self):
        # A reset() inside the window used to surface as negative usage;
        # the contract now clamps every field independently at zero (a
        # mid-window reset undercounts rather than going negative).
        backend = IdealBackend(exact=False, seed=0)
        backend.run([bell_circuit()] * 5, shots=100, purpose="forward")
        window_start = backend.meter.snapshot()
        backend.meter.reset()
        backend.run([bell_circuit()] * 2, shots=10, purpose="gradient")
        delta = backend.meter.diff(window_start)
        assert delta == {
            "circuits": 0,
            "shots": 0,
            "by_purpose": {"gradient": 2},
            "shots_by_purpose": {"gradient": 20},
        }
        assert all(v >= 0 for v in delta["by_purpose"].values())
        assert all(v >= 0 for v in delta["shots_by_purpose"].values())

    def test_diff_of_identical_snapshots_is_zero(self):
        backend = IdealBackend()
        backend.run([bell_circuit()])
        assert backend.meter.diff(backend.meter.snapshot()) == {
            "circuits": 0,
            "shots": 0,
            "by_purpose": {},
            "shots_by_purpose": {},
        }


class TestNoisyBackend:
    def test_noisy_expectations_biased_towards_zero(self):
        """Decoherence shrinks |<Z>| relative to the ideal value."""
        backend = NoisyBackend.from_device_name("ibmq_lima", seed=0)
        circuit = ry_circuit(0.3)
        noisy = backend.exact_expectations(circuit)[0]
        ideal = np.cos(0.3)
        assert noisy < ideal

    def test_reproducible_with_seed(self):
        circuit = bell_circuit()
        first = NoisyBackend.from_device_name(
            "ibmq_santiago", seed=7
        ).expectations([circuit], shots=512)
        second = NoisyBackend.from_device_name(
            "ibmq_santiago", seed=7
        ).expectations([circuit], shots=512)
        assert np.allclose(first, second)

    def test_noise_scale_zero_matches_ideal(self):
        circuit = ry_circuit(1.1)
        noisy = NoisyBackend.from_device_name(
            "ibmq_santiago", seed=0, noise_scale=0.0
        ).exact_expectations(circuit)
        assert np.isclose(noisy[0], np.cos(1.1), atol=1e-10)

    def test_transpiled_execution_close_to_logical(self):
        """Physical-level and logical-level noise agree qualitatively."""
        architecture = get_architecture("mnist2")
        rng = np.random.default_rng(1)
        circuit = architecture.full_circuit(
            rng.uniform(0, np.pi, 16), rng.uniform(-1, 1, 8)
        )
        logical = NoisyBackend.from_device_name(
            "ibmq_santiago", seed=0
        ).exact_expectations(circuit)
        physical = NoisyBackend.from_device_name(
            "ibmq_santiago", seed=0, transpile=True
        ).exact_expectations(circuit)
        ideal = IdealBackend().expectations([circuit])[0]
        # Both noisy paths deviate from ideal but stay in its vicinity,
        # and they agree with each other within a modest tolerance.
        assert np.max(np.abs(physical - ideal)) < 0.25
        assert np.max(np.abs(logical - ideal)) < 0.25
        assert np.max(np.abs(physical - logical)) < 0.15

    def test_observed_probabilities_normalized(self):
        backend = NoisyBackend.from_device_name("ibmq_jakarta", seed=0)
        probs = backend.observed_probabilities(bell_circuit())
        assert np.isclose(probs.sum(), 1.0)
        assert probs.shape == (4,)


class TestJobLifecycle:
    def test_happy_path(self):
        backend = IdealBackend(exact=True)
        job = submit_job(backend, [bell_circuit()], shots=16)
        assert job.status is JobStatus.CREATED
        results = job.result()
        assert job.status is JobStatus.DONE
        assert len(results) == 1

    def test_result_idempotent(self):
        backend = IdealBackend(exact=True)
        job = submit_job(backend, [bell_circuit()])
        first = job.result()
        second = job.result()
        assert first is second
        assert backend.meter.circuits == 1  # ran once

    def test_validation_failure(self):
        backend = IdealBackend()
        bad = QuantumCircuit(1, num_parameters=1)
        job = submit_job(backend, [bad])
        with pytest.raises(JobError):
            job.validate()
        assert job.status is JobStatus.ERROR
        with pytest.raises(JobError, match="already failed"):
            job.result()

    def test_illegal_transition(self):
        job = Job(IdealBackend(), [bell_circuit()], 16)
        job.validate()
        with pytest.raises(JobError, match="illegal transition"):
            job.validate()

    def test_negative_queue_time_rejected(self):
        job = Job(IdealBackend(), [bell_circuit()], 16)
        job.validate()
        with pytest.raises(ValueError):
            job.enqueue(-1.0)

    def test_unique_ids(self):
        backend = IdealBackend()
        a = submit_job(backend, [bell_circuit()])
        b = submit_job(backend, [bell_circuit()])
        assert a.job_id != b.job_id

    def test_explicit_id_and_allocator(self):
        from repro.hardware import JobIdAllocator

        backend = IdealBackend()
        explicit = Job(backend, [bell_circuit()], 16, job_id="mine-42")
        assert explicit.job_id == "mine-42"
        allocator = JobIdAllocator(prefix="exp")
        first = submit_job(backend, [bell_circuit()], allocator=allocator)
        second = submit_job(backend, [bell_circuit()], allocator=allocator)
        assert (first.job_id, second.job_id) == ("exp-000001", "exp-000002")

    def test_default_ids_resettable(self):
        from repro.hardware import reset_job_ids

        backend = IdealBackend()
        reset_job_ids()
        a = submit_job(backend, [bell_circuit()])
        reset_job_ids()
        b = submit_job(backend, [bell_circuit()])
        assert a.job_id == b.job_id == "job-000001"


class TestProvider:
    def test_lists_devices_and_simulators(self):
        names = QuantumProvider().backends()
        assert "ibmq_jakarta" in names
        assert "ideal" in names

    def test_backend_caching(self):
        provider = QuantumProvider(seed=0)
        first = provider.get_backend("ibmq_manila")
        second = provider.get_backend("ibmq_manila")
        assert first is second

    def test_distinct_options_distinct_backends(self):
        provider = QuantumProvider(seed=0)
        plain = provider.get_backend("ibmq_manila")
        scaled = provider.get_backend("ibmq_manila", noise_scale=2.0)
        assert plain is not scaled

    def test_ideal_backends(self):
        provider = QuantumProvider()
        assert provider.get_backend("ideal").exact
        assert not provider.get_backend("ideal_sampled").exact

    def test_submit_runs_on_named_backend(self):
        provider = QuantumProvider(seed=3)
        job = provider.submit("ideal", [bell_circuit()], shots=8)
        results = job.result()
        assert np.allclose(results[0].expectations, [0.0, 0.0], atol=1e-12)

    def test_job_ids_are_per_provider(self):
        """Two providers number their jobs independently (reproducible
        runs regardless of what other providers/tests did first)."""
        first = QuantumProvider(seed=0)
        first.submit("ideal", [bell_circuit()])
        first.submit("ideal", [bell_circuit()])
        fresh = QuantumProvider(seed=0)
        job = fresh.submit("ideal", [bell_circuit()])
        assert job.job_id == "job-000001"
