"""Central finite-difference Jacobians (baseline comparator).

The paper stresses that parameter shift is *not* a numerical difference:
Eq. 2 is exact at a macroscopic +/- pi/2 shift, while finite differences
approximate the derivative with a small step and therefore trade
truncation error against noise amplification (dividing shot noise by a
tiny 2*eps).  This module exists so tests and benchmarks can demonstrate
that difference quantitatively.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def finite_difference_jacobian(
    circuit,
    backend,
    eps: float = 1e-3,
    shots: int = 1024,
    param_indices: Sequence[int] | None = None,
    purpose: str = "fd-gradient",
) -> np.ndarray:
    """Central-difference Jacobian ``(f(x+eps) - f(x-eps)) / (2 eps)``.

    Same calling convention and circuit-count cost as
    :func:`repro.gradients.parameter_shift_jacobian`, but approximate —
    and with shot noise amplified by ``1/(2 eps)``.  Like parameter
    shift, all ``±eps`` clones share the base circuit's structure and go
    to the backend as one submission, so batch-capable backends evolve
    them as a single stacked tensor.
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    if param_indices is None:
        param_indices = list(range(circuit.num_parameters))
    param_indices = [int(i) for i in param_indices]

    jacobian = np.zeros(
        (circuit.n_qubits, circuit.num_parameters), dtype=np.float64
    )
    if not param_indices:
        return jacobian

    circuits = []
    index_map = []
    for index in param_indices:
        for position in circuit.occurrences_of(index):
            circuits.append(circuit.shifted(position, +eps))
            circuits.append(circuit.shifted(position, -eps))
            index_map.append(index)
    expectations = backend.expectations(
        circuits, shots=shots, purpose=purpose
    )
    for pair, param_index in enumerate(index_map):
        f_plus = expectations[2 * pair]
        f_minus = expectations[2 * pair + 1]
        jacobian[:, param_index] += (f_plus - f_minus) / (2.0 * eps)
    return jacobian
