"""Shared utilities for the experiment benchmarks.

Each benchmark file regenerates one table or figure of the paper at a
CI-friendly scale (fewer steps / smaller batches / smaller validation
subsets than the paper's multi-day hardware runs, with fixed seeds).  The
*shape* of each result — method orderings, crossovers, error laws — is
asserted; absolute accuracies are printed for EXPERIMENTS.md.

Scale knobs live here so all benchmarks stay consistent.
"""

from __future__ import annotations

import os

from repro.hardware import IdealBackend, NoisyBackend
from repro.pruning import PruningHyperparams
from repro.training import TrainingConfig, TrainingEngine


def smoke_mode() -> bool:
    """True when CI asks for the reduced-size benchmark pass.

    ``REPRO_BENCH_SMOKE=1`` shrinks the *throughput* benchmarks (fewer
    rounds / submissions, same speedup assertions) so their performance
    targets are exercised on every push without the multi-minute
    table/figure regenerations.  The accuracy benchmarks ignore the
    flag — their method-ordering assertions need the full CI scale.
    """
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def smoke_scaled(full: int, smoke: int) -> int:
    """Pick a size knob depending on :func:`smoke_mode`."""
    return smoke if smoke_mode() else full

# --- benchmark scale (paper-scale values in comments) -----------------------

#: Per-task (steps, batch_size).  Paper-scale runs use thousands of
#: steps; these CI-scale settings are the smallest that reproduce the
#: method ordering reliably.  Vowel-4 needs the largest batches (its
#: loss surface is the most rugged; the paper itself only reaches
#: 0.31-0.37 accuracy on it).
TASK_SCALE = {
    "mnist2": (30, 6),
    "fashion2": (30, 6),
    "mnist4": (24, 8),
    "fashion4": (24, 8),
    "vowel4": (24, 12),
}
SHOTS = 1024           # paper: 1024
EVAL_SIZE = 80         # paper: 300 validation samples
SEED = 7

#: Per-task device assignment (Table 1 caption).
TASK_DEVICES = {
    "mnist4": "ibmq_jakarta",
    "mnist2": "ibmq_jakarta",
    "fashion4": "ibmq_manila",
    "fashion2": "ibmq_santiago",
    "vowel4": "ibmq_lima",
}

#: Per-task pruning settings.  The paper uses r=0.5, w_a=1, w_p=2
#: everywhere except Fashion-4 (r=0.7); at this reduced step budget the
#: harsher ratio has not yet paid off, so the bench keeps r=0.5 there
#: too (deviation documented in EXPERIMENTS.md).
TASK_PRUNING = {
    "mnist2": PruningHyperparams(1, 2, 0.5),
    "mnist4": PruningHyperparams(1, 2, 0.5),
    "fashion2": PruningHyperparams(1, 2, 0.5),
    "fashion4": PruningHyperparams(1, 2, 0.5),
    "vowel4": PruningHyperparams(1, 2, 0.5),
}


def steps_for(task: str) -> int:
    return TASK_SCALE[task][0]


def base_config(task: str, **overrides) -> TrainingConfig:
    """CI-scale config for one task, with the paper's hyper-parameters."""
    steps, batch_size = TASK_SCALE[task]
    settings = dict(
        task=task,
        steps=steps,
        batch_size=batch_size,
        shots=SHOTS,
        optimizer="adam",
        lr_max=0.3,
        lr_min=0.03,
        eval_every=0,
        eval_size=EVAL_SIZE,
        seed=SEED,
    )
    settings.update(overrides)
    return TrainingConfig(**settings)


def run_classical_train(task: str, **overrides):
    """Classical-Train: adjoint gradients, exact simulation."""
    seed = overrides.get("seed", SEED)
    engine = TrainingEngine(
        base_config(task, gradient_engine="adjoint", **overrides),
        IdealBackend(exact=True, seed=seed),
    )
    engine.train()
    return engine


def run_qc_train(task: str, device: str | None = None, pruning=None,
                 sampler: str = "probabilistic", **overrides):
    """QC-Train (pruning=None) or QC-Train-PGP on the task's device."""
    device = device or TASK_DEVICES[task]
    seed = overrides.get("seed", SEED)
    backend = NoisyBackend.from_device_name(device, seed=seed)
    engine = TrainingEngine(
        base_config(
            task,
            gradient_engine="parameter_shift",
            pruning=pruning,
            pruning_sampler=sampler,
            **overrides,
        ),
        backend,
    )
    engine.train()
    return engine


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Fixed-width text table for benchmark output."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows))
        if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
