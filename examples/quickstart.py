"""Quickstart: train a 4-qubit QNN on-chip with gradient pruning.

Runs the paper's MNIST-2 task end to end in about a minute:
  1. get an emulated IBMQ backend from the provider,
  2. configure QC-Train-PGP (parameter shift + probabilistic gradient
     pruning, w_a=1 / w_p=2 / r=0.5 — the paper's default),
  3. train, and report validation accuracy plus circuit-run savings.

Usage:  python examples/quickstart.py
"""

from repro import (
    PruningHyperparams,
    QuantumProvider,
    TrainingConfig,
    TrainingEngine,
)


def main() -> None:
    provider = QuantumProvider(seed=0)
    backend = provider.get_backend("ibmq_santiago")

    config = TrainingConfig(
        task="mnist2",
        steps=15,
        batch_size=6,
        shots=1024,
        gradient_engine="parameter_shift",
        pruning=PruningHyperparams(
            accumulation_window=1, pruning_window=2, ratio=0.5
        ),
        optimizer="adam",
        eval_every=5,
        eval_size=60,
        seed=0,
    )

    engine = TrainingEngine(config, backend)
    print(f"Training {config.task} on {backend.name} "
          f"({engine.architecture.num_parameters} parameters)...")
    history = engine.train(verbose=True)

    print()
    print(f"final validation accuracy : {history.final_accuracy:.3f}")
    print(f"best validation accuracy  : {history.best_accuracy:.3f}")
    print(f"training circuit runs     : {engine.training_inferences()}")
    print(f"gradient evals skipped    : "
          f"{engine.pruner.empirical_savings:.1%} "
          f"(theory: {config.pruning.time_saved_fraction:.1%})")


if __name__ == "__main__":
    main()
