"""Model evaluation on any backend (real-QC validation of Table 1/Fig. 6)."""

from __future__ import annotations

import numpy as np

from repro.circuits.ansatz import QnnArchitecture
from repro.data.dataset import Dataset
from repro.ml.metrics import accuracy as _accuracy
from repro.training.heads import logits_from_expectations


def predict_logits(
    architecture: QnnArchitecture,
    theta: np.ndarray,
    features: np.ndarray,
    backend,
    shots: int = 1024,
    purpose: str = "validation",
) -> np.ndarray:
    """Class logits for a batch of examples on the given backend.

    Builds one encoder+ansatz circuit per example and submits them as a
    single batch.

    Returns:
        ``(batch, n_classes)`` logits.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim == 1:
        features = features[None, :]
    circuits = [
        architecture.full_circuit(row, theta) for row in features
    ]
    expectations = backend.expectations(
        circuits, shots=shots, purpose=purpose
    )
    return logits_from_expectations(expectations, architecture.n_classes)


def evaluate_accuracy(
    architecture: QnnArchitecture,
    theta: np.ndarray,
    dataset: Dataset,
    backend,
    shots: int = 1024,
    max_examples: int | None = None,
    seed: int | None = None,
) -> float:
    """Classification accuracy of ``theta`` on a dataset via a backend.

    Args:
        max_examples: Evaluate on a random subset of this size (the paper
            samples 300 validation images; tests use less).
        seed: Subset-sampling seed.
    """
    features, labels = dataset.features, dataset.labels
    if max_examples is not None and max_examples < len(dataset):
        rng = np.random.default_rng(seed)
        picked = rng.choice(len(dataset), size=max_examples, replace=False)
        features, labels = features[picked], labels[picked]
    logits = predict_logits(
        architecture, theta, features, backend, shots=shots
    )
    return _accuracy(logits, labels)
