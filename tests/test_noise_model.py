"""Tests for device calibrations and noise models."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, get_architecture
from repro.noise import (
    CALIBRATIONS,
    DeviceCalibration,
    NoiseModel,
    get_calibration,
    noise_model_for,
)


class TestCalibrations:
    def test_paper_devices_present(self):
        expected = {
            "ibmq_jakarta", "ibmq_manila", "ibmq_santiago",
            "ibmq_lima", "ibmq_casablanca", "ibmq_toronto",
        }
        assert expected == set(CALIBRATIONS)

    def test_short_names_resolve(self):
        assert get_calibration("santiago").name == "ibmq_santiago"
        assert get_calibration("IBMQ_JAKARTA").name == "ibmq_jakarta"

    def test_unknown_device(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_calibration("ibmq_melbourne")

    def test_error_rates_in_paper_range(self):
        """Gate errors 1e-3..1e-2 for CX (Sec. 1's NISQ range)."""
        for calibration in CALIBRATIONS.values():
            assert 1e-3 <= calibration.cx_gate_error <= 1e-1
            assert calibration.sq_gate_error < calibration.cx_gate_error

    def test_coupling_maps_valid(self):
        for calibration in CALIBRATIONS.values():
            for a, b in calibration.coupling_map:
                assert 0 <= a < calibration.n_qubits
                assert 0 <= b < calibration.n_qubits
                assert a != b

    def test_casablanca_noisier_than_santiago(self):
        """Fig. 2c shows casablanca gradients noisier than santiago's."""
        assert (
            get_calibration("casablanca").cx_gate_error
            > get_calibration("santiago").cx_gate_error
        )

    def test_validation_rejects_bad_t2(self):
        base = get_calibration("santiago")
        with pytest.raises(ValueError, match="T2"):
            dataclasses.replace(base, t2_us=base.t1_us * 3)

    def test_validation_rejects_bad_edge(self):
        base = get_calibration("santiago")
        with pytest.raises(ValueError, match="out of range"):
            dataclasses.replace(base, coupling_map=((0, 99),))

    def test_validation_rejects_self_loop(self):
        base = get_calibration("santiago")
        with pytest.raises(ValueError, match="self-loop"):
            dataclasses.replace(base, coupling_map=((1, 1),))


def _rzz_op():
    circuit = QuantumCircuit(2)
    circuit.add("rzz", (0, 1), 0.5)
    return circuit.operations[0]


def _rx_op():
    circuit = QuantumCircuit(1)
    circuit.add("rx", 0, 0.5)
    return circuit.operations[0]


class TestNoiseModel:
    def test_channels_cover_all_touched_wires(self):
        model = noise_model_for("ibmq_jakarta")
        wires = [w for _, w in model.channels_for(_rzz_op())]
        touched = {wire for (wire,) in wires}
        assert touched == {0, 1}

    def test_scale_zero_yields_no_channels(self):
        model = noise_model_for("ibmq_jakarta", scale=0.0)
        assert list(model.channels_for(_rzz_op())) == []
        assert model.superop_for(_rzz_op()) is None

    def test_superop_trace_preserving(self):
        model = noise_model_for("ibmq_manila")
        superop = model.superop_for(_rx_op())
        # Trace preservation: superop^T maps vec(I) to vec(I) columns sum.
        # Check by applying to a random density matrix.
        rng = np.random.default_rng(0)
        mat = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        rho = mat @ mat.conj().T
        rho /= np.trace(rho)
        out = (superop @ rho.reshape(-1)).reshape(2, 2)
        assert np.isclose(np.trace(out).real, 1.0, atol=1e-10)

    def test_two_qubit_gates_noisier_than_single(self):
        """Logical-level: RZZ's per-qubit channel decoheres more than RX's."""
        model = noise_model_for("ibmq_jakarta", include_coherent=False)
        rho_2q = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
        out_rzz = (
            model.superop_for(_rzz_op()) @ rho_2q.reshape(-1)
        ).reshape(2, 2)
        out_rx = (
            model.superop_for(_rx_op()) @ rho_2q.reshape(-1)
        ).reshape(2, 2)
        assert abs(out_rzz[0, 1]) < abs(out_rx[0, 1])

    def test_scale_monotonicity(self):
        """Larger noise scale decoheres strictly more."""
        op = _rzz_op()
        rho = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
        coherences = []
        for scale in (0.5, 1.0, 2.0):
            model = noise_model_for("ibmq_lima", scale=scale)
            out = (model.superop_for(op) @ rho.reshape(-1)).reshape(2, 2)
            coherences.append(abs(out[0, 1]))
        assert coherences[0] > coherences[1] > coherences[2]

    def test_readout_confusions_shape(self):
        model = noise_model_for("ibmq_santiago")
        confusions = model.readout_confusions(4)
        assert len(confusions) == 4
        for confusion in confusions:
            assert confusion.shape == (2, 2)
            assert np.allclose(confusion.sum(axis=0), 1.0)

    def test_expected_gate_error_ranks_devices(self):
        architecture = get_architecture("mnist2")
        circuit = architecture.full_circuit(np.zeros(16), np.zeros(8))
        error_santiago = noise_model_for("ibmq_santiago").expected_gate_error(
            circuit
        )
        error_casablanca = noise_model_for(
            "ibmq_casablanca"
        ).expected_gate_error(circuit)
        assert error_casablanca > error_santiago

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError, match="level"):
            NoiseModel(get_calibration("santiago"), level="gate")

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            noise_model_for("santiago", scale=-1.0)
