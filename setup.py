"""Packaging for the QOC reproduction (no PEP 517 backend required)."""

import re
from pathlib import Path

from setuptools import find_packages, setup

_HERE = Path(__file__).parent
_VERSION = re.search(
    r'__version__ = "([^"]+)"',
    (_HERE / "src" / "repro" / "version.py").read_text(),
).group(1)

setup(
    name="repro-qoc",
    version=_VERSION,
    description=(
        "Reproduction of 'QOC: quantum on-chip training with parameter "
        "shift and gradient pruning' (DAC 2022) with a batched "
        "statevector execution engine"
    ),
    long_description=(_HERE / "README.md").read_text()
    if (_HERE / "README.md").exists()
    else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.11",
        "Topic :: Scientific/Engineering :: Physics",
    ],
)
