"""Shared multi-client measurement harness.

``repro serve-bench`` and ``benchmarks/test_serving_throughput.py``
measure the same scenario — N client threads pushing circuit
submissions against either a synchronous backend or a shared
:class:`~repro.serving.ExecutionService` — and must time it the same
way, or the two would report inconsistent speedups for one workload.
The methodology lives here once: all clients block on a start gate so
thread spawn cost stays outside the measurement, and the clock runs
from gate-open to the last join.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable


def concurrent_client_wall_time(
    n_clients: int, client: Callable[[int], None]
) -> float:
    """Wall time for ``n_clients`` threads to run ``client(index)`` each.

    Args:
        n_clients: Number of concurrent client threads.
        client: Per-client body; receives the client index.

    Returns:
        Seconds from releasing the start gate until every client
        finished.
    """
    start_gate = threading.Event()

    def gated(index: int) -> None:
        start_gate.wait()
        client(index)

    threads = [
        threading.Thread(target=gated, args=(index,))
        for index in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    start = time.perf_counter()
    start_gate.set()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start
