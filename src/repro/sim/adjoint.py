"""Adjoint-mode analytic differentiation of circuit expectations.

Computes the exact Jacobian ``d<O_t>/d theta_i`` of Pauli-Z-word
observables with respect to all trainable parameters in a single forward
pass plus one backward sweep — O(gates) statevector applications instead
of the O(2 * n_params * gates) of parameter shift.  This powers the fast
noise-free Classical-Train baseline; agreement with parameter shift on
the ideal backend is the central correctness invariant of the repo (see
``tests/test_gradient_baselines.py`` and ``tests/test_adjoint_batched.py``).

Derivation: with ``|psi_j> = U_j ... U_1 |0>`` and
``<b_j| = <psi_N| O U_N ... U_{j+1}``, the derivative of
``f = <psi_N|O|psi_N>`` w.r.t. the parameter of gate ``j`` (of generator
``G``, ``U_j = exp(-i theta G / 2)``) is ``Im(<b_j| G |psi_j>)``.

Two sweep implementations coexist:

* :func:`adjoint_expectation_and_jacobian_batch` — the batched kernel.
  ``B`` same-structure circuits run one vectorized forward pass through
  a compiled :class:`~repro.sim.compile.ExecutionPlan` on a
  :class:`~repro.sim.batched.BatchedStatevector`, then one backward
  reverse-replay of the plan's :meth:`~repro.sim.compile.ExecutionPlan.
  adjoint` lowering advances the ket and every observable bra of every
  circuit together in a single ``((1 + T) * B,) + (2,)*n`` stack.  Each
  per-circuit slice is bit-identical to running the same plan as a
  batch of one — the kernels reduce each slice to the same GEMMs and
  reductions regardless of batch size.
* The sequential seed sweep (``plan=None``) — the original per-gate
  implementation, kept op-for-op intact as the ``REPRO_FUSED=0`` escape
  path; its results are bit-identical to the pre-batching code.
"""

from __future__ import annotations

import numpy as np

from repro.sim import apply as _apply
from repro.sim import gates as _gates
from repro.sim.batched import BatchedStatevector
from repro.sim.statevector import Statevector


def _default_observables(n_qubits: int) -> tuple[tuple[int, ...], ...]:
    """Per-qubit ``Z_k`` — the measurement layer of the paper's QNN."""
    return tuple((k,) for k in range(n_qubits))


def _check_shift_rule(ops) -> None:
    for op in ops:
        if op.param_index is not None:
            spec = _gates.get_gate(op.name)
            if not spec.shift_rule:
                raise ValueError(
                    f"adjoint differentiation requires Pauli-rotation "
                    f"trainable gates, got {op.name!r}"
                )


def _seed_sweep(
    circuit, observables: tuple[tuple[int, ...], ...], ket=None
) -> np.ndarray:
    """The sequential per-gate adjoint sweep (seed implementation).

    Kept operation-for-operation identical to the pre-batching code so
    its results stay bit-identical to the seed; generalized only in
    letting the caller pass a pre-evolved forward state (avoiding a
    second simulation) and letting each observable be a Z *word* over
    several wires instead of one ``Z_k``.

    Returns the ``(T, n_params)`` Jacobian.
    """
    n_params = circuit.num_parameters
    jacobian = np.zeros((len(observables), n_params), dtype=np.float64)

    ops = list(circuit.operations)
    _check_shift_rule(ops)

    # Forward pass (unless the caller already ran it).
    if ket is None:
        ket = Statevector(circuit.n_qubits)
        for op in ops:
            ket.apply_gate(op.name, op.wires, *op.params)
    else:
        ket = ket.copy()

    # One adjoint state per observable.
    bras = []
    for wires in observables:
        bra = ket.copy()
        for wire in wires:
            bra.apply_matrix(_gates.Z, [wire])
        bras.append(bra)

    # Backward sweep.
    for op in reversed(ops):
        if op.param_index is not None:
            spec = _gates.get_gate(op.name)
            generator = _gates.pauli_word_matrix(spec.generator)
            g_ket = _apply.apply_matrix(ket.tensor, generator, op.wires)
            for index, bra in enumerate(bras):
                overlap = np.vdot(bra.tensor, g_ket)
                jacobian[index, op.param_index] += float(np.imag(overlap))
        # Un-apply the gate from ket and all bras.
        matrix = _gates.get_gate(op.name).matrix(*op.params)
        inverse = matrix.conj().T
        ket.apply_matrix(inverse, op.wires)
        for bra in bras:
            bra.apply_matrix(inverse, op.wires)

    return jacobian


def _observable_signs(
    n_qubits: int, observables: tuple[tuple[int, ...], ...]
) -> np.ndarray:
    """``(T,) + (2,)*n`` sign tensors of the Z-word observables.

    Entry ``t`` is the diagonal of ``prod_{w in observables[t]} Z_w`` as
    a broadcastable tensor — multiplying a ket by it is exactly applying
    the observable (every entry is ``+-1``, so the elementwise product
    is an exact sign flip, bit-identical to the Z matmuls).
    """
    z_diag = np.array([1.0, -1.0])
    one = np.ones(2)
    signs = np.empty((len(observables),) + (2,) * n_qubits, dtype=np.float64)
    for index, wires in enumerate(observables):
        tensor = np.array(1.0)
        for qubit in range(n_qubits):
            tensor = np.multiply.outer(
                tensor, z_diag if qubit in wires else one
            )
        signs[index] = tensor
    return signs


def adjoint_expectation_and_jacobian_batch(
    circuits, plan=None, observables=None
) -> tuple[np.ndarray, np.ndarray]:
    """Batched adjoint sweep over same-structure circuits.

    One vectorized forward pass and one backward reverse-replay compute
    every observable expectation and its full Jacobian for every
    circuit.

    Args:
        circuits: Non-empty sequence of structurally identical
            :class:`~repro.circuits.QuantumCircuit` objects.
        plan: Compiled statevector :class:`~repro.sim.compile.
            ExecutionPlan` for the shared structure.  ``None`` selects
            the unbatched escape path: one sequential seed sweep per
            circuit, bit-identical to the seed implementation.
        observables: Optional sequence of Z-word wire tuples (e.g.
            ``[(0,), (1, 3)]`` for ``Z_0`` and ``Z_1 Z_3``); defaults to
            the per-qubit ``Z_k`` measurement layer.

    Returns:
        ``(expectations, jacobians)`` with shapes ``(B, T)`` and
        ``(B, T, n_params)``; multiple occurrences of one parameter are
        summed, matching Sec. 3.1's multi-occurrence rule.
    """
    circuits = list(circuits)
    if not circuits:
        raise ValueError("need at least one circuit")
    n_qubits = circuits[0].n_qubits
    n_params = circuits[0].num_parameters
    if observables is None:
        obs = _default_observables(n_qubits)
    else:
        obs = tuple(tuple(int(w) for w in wires) for wires in observables)

    if plan is None:
        expectations = np.empty((len(circuits), len(obs)), dtype=np.float64)
        jacobians = np.empty(
            (len(circuits), len(obs), n_params), dtype=np.float64
        )
        for index, circuit in enumerate(circuits):
            state = Statevector(n_qubits).evolve(circuit)
            expectations[index] = _state_expectations(state, obs, n_qubits)
            jacobians[index] = _seed_sweep(circuit, obs, ket=state)
        return expectations, jacobians

    # Deferred import: repro.circuits pulls the gate registry out of
    # repro.sim at package-init time, so a module-level import here
    # would be circular.
    from repro.circuits.batch import CircuitBatch

    batch = CircuitBatch(circuits)
    # Build (and thereby validate) the backward lowering before paying
    # for the forward pass — unsupported trainable gates fail up front,
    # matching the seed sweep's error ordering.
    adjoint = plan.adjoint()
    size = batch.size
    state = BatchedStatevector(n_qubits, size).evolve(batch, plan=plan)
    signs = _observable_signs(n_qubits, obs)
    if observables is None:
        expectations = state.expectation_z()
    else:
        expectations = state.probabilities() @ signs.reshape(len(obs), -1).T

    jacobian = np.zeros((len(obs), size, n_params), dtype=np.float64)
    trainable = any(
        template.param_index is not None for template in batch.templates
    )
    if obs and trainable:
        # Combined stack: ket rows first, then one B-row group of bras
        # per observable (ket scaled by the observable's sign diagonal).
        combined = np.empty(
            ((1 + len(obs)) * size,) + (2,) * n_qubits, dtype=np.complex128
        )
        combined[:size] = state.tensor
        for index in range(len(obs)):
            combined[(1 + index) * size : (2 + index) * size] = (
                state.tensor * signs[index]
            )
        adjoint.run(combined, size, batch, jacobian)
    return expectations, jacobian.transpose(1, 0, 2)


def _state_expectations(
    state: Statevector, obs: tuple[tuple[int, ...], ...], n_qubits: int
) -> np.ndarray:
    """Observable expectations of one state, seed-path readout.

    Per-qubit Z observables go through :meth:`Statevector.
    expectation_z` — the exact readout the backends use, keeping the
    escape path's forward values bit-identical to a backend forward
    run.  General Z words contract the probability vector against the
    observables' sign diagonals.
    """
    if obs == _default_observables(n_qubits):
        return np.asarray(state.expectation_z(), dtype=np.float64)
    signs = _observable_signs(n_qubits, obs)
    return state.probabilities() @ signs.reshape(len(obs), -1).T


def adjoint_jacobian(circuit, plan=None) -> np.ndarray:
    """Exact Jacobian of per-qubit Z expectations w.r.t. trainable params.

    Args:
        circuit: a :class:`repro.circuits.QuantumCircuit`.  All trainable
            operations must use shift-rule gates (single-parameter Pauli
            rotations), which is true of every ansatz in the paper.
        plan: Optional compiled statevector plan for the circuit's
            structure; when given the circuit rides the batched adjoint
            kernel as a batch of one (bit-identical to its slice of any
            larger batch).  ``None`` runs the sequential seed sweep.

    Returns:
        Array of shape ``(n_qubits, n_params)`` where entry ``(k, i)`` is
        ``d<Z_k>/d theta_i``.  Multiple occurrences of one parameter are
        summed, matching Sec. 3.1's multi-occurrence rule.
    """
    if plan is None:
        return _seed_sweep(
            circuit, _default_observables(circuit.n_qubits)
        )
    _, jacobians = adjoint_expectation_and_jacobian_batch(
        [circuit], plan=plan
    )
    return jacobians[0]


def adjoint_expectation_and_jacobian(
    circuit, plan=None
) -> tuple[np.ndarray, np.ndarray]:
    """Exact ``<Z>`` vector and its Jacobian from one forward pass.

    The forward state is computed once and reused by the backward sweep
    (the seed version simulated the circuit twice).
    """
    if plan is None:
        state = Statevector(circuit.n_qubits).evolve(circuit)
        expectations = np.asarray(state.expectation_z(), dtype=np.float64)
        jacobian = _seed_sweep(
            circuit, _default_observables(circuit.n_qubits), ket=state
        )
        return expectations, jacobian
    expectations, jacobians = adjoint_expectation_and_jacobian_batch(
        [circuit], plan=plan
    )
    return expectations[0], jacobians[0]
