"""Tests for tensor-contraction gate application."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import apply as ap
from repro.sim import gates


def random_state(n_qubits: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    vec = rng.normal(size=2**n_qubits) + 1j * rng.normal(size=2**n_qubits)
    vec /= np.linalg.norm(vec)
    return vec.reshape((2,) * n_qubits)


def random_density(n_qubits: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dim = 2**n_qubits
    mat = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    rho = mat @ mat.conj().T
    rho /= np.trace(rho)
    return rho.reshape((2,) * (2 * n_qubits))


class TestApplyMatrix:
    def test_single_qubit_matches_full_matrix(self):
        state = random_state(3)
        out = ap.apply_matrix(state, gates.H, [1])
        full = np.kron(np.kron(gates.I2, gates.H), gates.I2)
        expected = (full @ state.reshape(-1)).reshape((2,) * 3)
        assert np.allclose(out, expected)

    def test_two_qubit_adjacent_matches_full_matrix(self):
        state = random_state(3)
        out = ap.apply_matrix(state, gates.CX, [0, 1])
        full = np.kron(gates.CX, gates.I2)
        expected = (full @ state.reshape(-1)).reshape((2,) * 3)
        assert np.allclose(out, expected)

    def test_two_qubit_reversed_wires(self):
        """CX with control=1, target=0 differs from control=0, target=1."""
        state = random_state(2, seed=3)
        out_01 = ap.apply_matrix(state, gates.CX, [0, 1])
        out_10 = ap.apply_matrix(state, gates.CX, [1, 0])
        assert not np.allclose(out_01, out_10)
        # Explicit check: |01> with control=wire1 flips wire 0 -> |11>.
        basis = np.zeros((2, 2), dtype=complex)
        basis[0, 1] = 1.0
        flipped = ap.apply_matrix(basis, gates.CX, [1, 0])
        assert np.isclose(abs(flipped[1, 1]), 1.0)

    def test_norm_preserved(self):
        state = random_state(4, seed=7)
        out = ap.apply_matrix(state, gates.rzz(1.3), [0, 3])
        assert np.isclose(np.linalg.norm(out), 1.0)

    def test_duplicate_wires_rejected(self):
        state = random_state(2)
        with pytest.raises(ValueError, match="duplicate"):
            ap.apply_matrix(state, gates.CX, [1, 1])

    def test_wire_out_of_range_rejected(self):
        state = random_state(2)
        with pytest.raises(ValueError, match="out of range"):
            ap.apply_matrix(state, gates.H, [2])

    def test_matrix_shape_mismatch_rejected(self):
        state = random_state(2)
        with pytest.raises(ValueError, match="does not match"):
            ap.apply_matrix(state, gates.CX, [0])

    @given(wire=st.integers(min_value=0, max_value=3), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_inverse_round_trip(self, wire, seed):
        state = random_state(4, seed=seed)
        matrix = gates.ry(0.7)
        forward = ap.apply_matrix(state, matrix, [wire])
        back = ap.apply_matrix(forward, matrix.conj().T, [wire])
        assert np.allclose(back, state, atol=1e-12)


class TestDensityApply:
    def test_unitary_conjugation_matches_dense(self):
        rho = random_density(2, seed=1)
        out = ap.apply_matrix_to_density(rho, gates.H, [0])
        dense = np.kron(gates.H, gates.I2)
        expected = dense @ rho.reshape(4, 4) @ dense.conj().T
        assert np.allclose(out.reshape(4, 4), expected)

    def test_two_qubit_conjugation_matches_dense(self):
        rho = random_density(3, seed=2)
        matrix = gates.rxx(0.9)
        out = ap.apply_matrix_to_density(rho, matrix, [1, 2])
        dense = np.kron(gates.I2, matrix)
        expected = dense @ rho.reshape(8, 8) @ dense.conj().T
        assert np.allclose(out.reshape(8, 8), expected)

    def test_trace_preserved_by_unitary(self):
        rho = random_density(3, seed=3)
        out = ap.apply_matrix_to_density(rho, gates.rzz(0.5), [0, 2])
        assert np.isclose(np.trace(out.reshape(8, 8)).real, 1.0)

    def test_kraus_channel_preserves_trace(self):
        from repro.noise.channels import depolarizing

        rho = random_density(2, seed=4)
        out = ap.apply_kraus_to_density(rho, depolarizing(0.3), [1])
        assert np.isclose(np.trace(out.reshape(4, 4)).real, 1.0)

    def test_empty_channel_rejected(self):
        rho = random_density(1)
        with pytest.raises(ValueError, match="at least one"):
            ap.apply_kraus_to_density(rho, [], [0])


class TestSuperop:
    def test_kraus_to_superop_identity(self):
        superop = ap.kraus_to_superop([np.eye(2, dtype=complex)])
        assert np.allclose(superop, np.eye(4))

    def test_superop_matches_kraus_application(self):
        from repro.noise.channels import amplitude_damping

        kraus = amplitude_damping(0.25)
        rho = random_density(3, seed=5)
        via_kraus = ap.apply_kraus_to_density(rho, kraus, [1])
        superop = ap.kraus_to_superop(kraus)
        via_superop = ap.apply_superop_to_density(rho, superop, 1)
        assert np.allclose(via_kraus, via_superop, atol=1e-12)

    def test_superop_wrong_shape_rejected(self):
        rho = random_density(2)
        with pytest.raises(ValueError, match="4x4"):
            ap.apply_superop_to_density(rho, np.eye(16), 0)

    def test_superop_wire_out_of_range(self):
        rho = random_density(2)
        with pytest.raises(ValueError, match="out of range"):
            ap.apply_superop_to_density(rho, np.eye(4), 5)


class TestExpandMatrix:
    def test_expand_single_qubit(self):
        expanded = ap.expand_matrix(gates.X, [1], 2)
        assert np.allclose(expanded, np.kron(gates.I2, gates.X))

    def test_expand_two_qubit_non_adjacent(self):
        expanded = ap.expand_matrix(gates.CZ, [0, 2], 3)
        # CZ is symmetric and diagonal: phase -1 on |1?1>.
        diag = np.diag(expanded)
        expected = np.ones(8)
        expected[0b101] = -1
        expected[0b111] = -1
        assert np.allclose(diag, expected)

    def test_expand_is_unitary(self):
        expanded = ap.expand_matrix(gates.rzx(0.4), [2, 0], 3)
        assert gates.is_unitary(expanded)


class TestSpecializedKernels:
    """Diagonal / permutation kernels match the generic matmul path."""

    def _random_states(self, n_qubits, batch, seed=0):
        rng = np.random.default_rng(seed)
        vecs = rng.normal(size=(batch, 2**n_qubits)) + 1j * rng.normal(
            size=(batch, 2**n_qubits)
        )
        vecs /= np.linalg.norm(vecs, axis=1, keepdims=True)
        return vecs.reshape((batch,) + (2,) * n_qubits)

    @pytest.mark.parametrize("wires", [(0,), (2,), (0, 2), (2, 0)])
    def test_diag_matches_matmul(self, wires):
        states = self._random_states(3, 4)
        rng = np.random.default_rng(1)
        k = len(wires)
        diags = np.exp(1j * rng.uniform(-np.pi, np.pi, (4, 2**k)))
        out = ap.apply_diag_batched(states, diags, wires)
        reference = ap.apply_matrix_batched(
            states,
            np.stack([np.diag(row) for row in diags]),
            wires,
        )
        assert np.allclose(out, reference, atol=1e-12)

    def test_diag_shared_batchwide(self):
        states = self._random_states(2, 3)
        diag = np.diagonal(gates.CZ)
        out = ap.apply_diag_batched(states, diag, (0, 1))
        reference = ap.apply_matrix_batched(states, gates.CZ, (0, 1))
        assert np.allclose(out, reference, atol=1e-12)

    @pytest.mark.parametrize(
        "name,wires", [("x", (1,)), ("cx", (0, 2)), ("cx", (2, 0)), ("swap", (1, 2))]
    )
    def test_permutation_matches_matmul(self, name, wires):
        states = self._random_states(3, 4)
        matrix = gates.GATES[name].matrix()
        source = np.array(
            [int(np.nonzero(row)[0][0]) for row in matrix], dtype=np.intp
        )
        out = ap.apply_permutation_batched(states, source, wires)
        reference = ap.apply_matrix_batched(states, matrix, wires)
        assert np.array_equal(out, reference)

    def test_diag_density_matches_conjugation(self):
        rhos = np.stack(
            [random_density(2, seed=s).reshape(4, 4) for s in range(3)]
        ).reshape((3,) + (2,) * 4)
        rng = np.random.default_rng(2)
        diags = np.exp(1j * rng.uniform(-np.pi, np.pi, (3, 4)))
        out = ap.apply_diag_to_density_batched(rhos, diags, (0, 1))
        reference = ap.apply_matrix_to_density_batched(
            rhos, np.stack([np.diag(row) for row in diags]), (0, 1)
        )
        assert np.allclose(out, reference, atol=1e-12)

    def test_permutation_density_matches_conjugation(self):
        rhos = np.stack(
            [random_density(2, seed=s).reshape(4, 4) for s in range(3)]
        ).reshape((3,) + (2,) * 4)
        source = np.array(
            [int(np.nonzero(row)[0][0]) for row in gates.CX],
            dtype=np.intp,
        )
        out = ap.apply_permutation_to_density_batched(rhos, source, (0, 1))
        reference = ap.apply_matrix_to_density_batched(
            rhos, gates.CX, (0, 1)
        )
        assert np.array_equal(out, reference)

    def test_bad_diag_length_rejected(self):
        states = self._random_states(2, 2)
        with pytest.raises(ValueError, match="diagonal"):
            ap.apply_diag_batched(states, np.ones(3), (0,))

    def test_bad_permutation_rejected(self):
        states = self._random_states(2, 2)
        with pytest.raises(ValueError, match="permutation"):
            ap.apply_permutation_batched(
                states, np.array([0, 0]), (1,)
            )

    def test_expand_matrix_matches_column_construction(self):
        # The vectorized expand_matrix reproduces the per-basis-column
        # definition exactly.
        rng = np.random.default_rng(3)
        matrix = gates.rzx(0.7)
        wires, n_qubits = [2, 0], 3
        expanded = ap.expand_matrix(matrix, wires, n_qubits)
        for col in range(2**n_qubits):
            basis = np.zeros(2**n_qubits, dtype=np.complex128)
            basis[col] = 1.0
            reference = ap.apply_matrix(
                basis.reshape((2,) * n_qubits), matrix, wires
            ).reshape(-1)
            assert np.array_equal(expanded[:, col], reference)
