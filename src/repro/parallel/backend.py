"""``ShardedBackend``: the worker pool behind a plain ``Backend`` face.

Drop-in means drop-in: everything that accepts a
:class:`~repro.hardware.Backend` — the TrainingEngine, the gradient
engines, the serving :class:`~repro.serving.Router` — can be handed a
``ShardedBackend`` instead and transparently executes across a pool of
worker processes.  The facade keeps the base class's whole contract:

* ``run`` validates, groups by structure signature, and reassembles
  results in submission order (all inherited from ``Backend.run``);
* ``_execute_batch`` is where the sharding happens: the group is
  chunked by the :class:`~repro.parallel.ShardPlanner`, scattered over
  the :class:`~repro.parallel.WorkerPool`, and gathered back into
  group order;
* the facade :class:`~repro.hardware.CircuitRunMeter` is fed by
  merging each worker's per-shard meter window — totals *and* the
  ``by_purpose`` / ``shots_by_purpose`` breakdowns — so inference
  accounting reads exactly as if the facade had executed every circuit
  itself (see the README's serving architecture notes; the
  ``Backend.run`` facade-side record is suppressed via
  ``_record_run`` to avoid double counting).

Determinism: exact-mode results are bit-identical to the
single-process batched path for *any* worker count (exact execution
consumes no randomness and the batched kernels are chunk-invariant);
sampled counts come from per-circuit ``SeedSequence`` substreams
spawned in submission order from the facade's root seed, so they are
reproducible for a fixed seed — and invariant to the worker count too.

Resilience: the pool already absorbs individual worker crashes and
hangs (respawn + replay, see :mod:`repro.parallel.pool`); the facade
adds the *last* line of defense — **graceful degradation**.  When a
shard exhausts its respawn budget, or the pool burns through its
lifetime restart budget, the facade warns once
(:class:`~repro.resilience.ResilienceWarning`), rebuilds a local
replica from its spec, and executes the *same planned shards with the
same seeds* in-process.  Because shard seeds are position-keyed and
the in-process kernel is the very ``execute_shard`` workers run,
degraded results are bit-identical (exact) / seed-identical (sampled)
to what the pool would have produced — slower, never wrong.  Meter
windows from the failed pool attempt are discarded before the replay,
so no shard is double-counted.  Hung-shard detection is on by default,
with per-shard timeouts derived from the :mod:`repro.scaling` cost
model (see :func:`~repro.parallel.shard.shard_timeout_s`).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.hardware.backend import Backend, ExecutionResult
from repro.parallel.pool import (
    RestartBudgetExhausted,
    WorkerCrashError,
    WorkerPool,
    batch_probabilities,
    execute_shard,
)
from repro.parallel.shard import ShardPlanner, shard_timeout_s
from repro.parallel.spec import BackendSpec
from repro.resilience.errors import ResilienceWarning


class ShardedBackend(Backend):
    """Multi-process sharded execution of a simulator backend.

    Args:
        backend: What to replicate in the workers — a live
            ``IdealBackend`` / ``NoisyBackend`` (captured via
            :meth:`BackendSpec.from_backend`) or a ``BackendSpec``.
            When a live backend is given, the facade **adopts its
            meter**: callers that handed their backend to a service
            keep observing usage on the object they own, which is the
            metering contract the serving layer documents.
        workers: Worker process count (>= 1).
        seed: Root seed for the sampling substreams; defaults to the
            wrapped backend's seed, so wrapping a seeded backend stays
            reproducible without extra plumbing.
        min_shard_cost: Split floor forwarded to the
            :class:`ShardPlanner` (``None`` = its default; ``0`` =
            always split to ``workers`` chunks).
        max_retries: Crash-respawn budget per shard.
        hang_timeout_s: Hung-shard detection: ``"auto"`` (default)
            derives a per-shard progress timeout from the cost model,
            a float fixes one timeout for every shard, ``None``
            disables detection.
        restart_budget: Pool-lifetime respawn cap (``None`` = the
            pool's default of ``4 * workers``).
        fallback: Degrade to in-process execution when the pool gives
            up (default).  ``False`` re-raises pool escalations to the
            caller instead — for callers that would rather fail fast
            than run slow.

    The pool spawns lazily on first execution and is stopped by
    :meth:`close` (also a context manager, also reaped at garbage
    collection).  Like the single-process backends, a ShardedBackend
    is not thread-safe; the serving router already serializes per-
    backend runs.
    """

    def __init__(
        self,
        backend: Backend | BackendSpec,
        workers: int,
        seed: int | None = None,
        min_shard_cost: float | None = None,
        max_retries: int = 2,
        hang_timeout_s: float | str | None = "auto",
        restart_budget: int | None = None,
        fallback: bool = True,
    ):
        if isinstance(hang_timeout_s, str) and hang_timeout_s != "auto":
            raise ValueError(
                "hang_timeout_s must be 'auto', a float, or None"
            )
        if isinstance(backend, BackendSpec):
            spec = backend
            adopted_meter = None
        else:
            spec = BackendSpec.from_backend(backend)
            adopted_meter = backend.meter
        if workers < 1:
            raise ValueError("need at least one worker")
        super().__init__(
            seed=spec.seed if seed is None else seed
        )
        self.spec = spec
        self.workers = int(workers)
        if adopted_meter is not None:
            # Wrapping a live backend adopts its meter (class docstring).
            self.meter = adopted_meter
        self.name = f"{spec.describe()}[x{self.workers}]"
        self.planner = ShardPlanner(
            self.workers,
            min_shard_cost=min_shard_cost,
            density=spec.kind == "noisy",
            fused=spec.fused,
        )
        self.pool = WorkerPool(
            spec,
            self.workers,
            max_retries=max_retries,
            restart_budget=restart_budget,
        )
        self.hang_timeout_s = hang_timeout_s
        self.fallback_enabled = bool(fallback)
        self.fallbacks = 0
        self._degraded = False
        self._warned_fallback = False
        self._local_replica: Backend | None = None
        self._seed_seq = np.random.SeedSequence(self._seed)
        self._active_purpose = "run"

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Stop the worker pool; idempotent."""
        self.pool.close()

    def __enter__(self) -> "ShardedBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- capability queries (answered by the spec) ------------------------

    def supports_batching(self) -> bool:
        return True

    def results_deterministic(self) -> bool:
        # Mirrors the replicas: only an exact IdealBackend qualifies.
        return self.spec.kind == "ideal" and self.spec.exact

    def exact_execution(self) -> bool:
        return not self.spec.samples

    def seed(self, seed: int | None) -> None:
        """Reset the root of the sampling substream tree."""
        super().seed(seed)
        self._seed_seq = np.random.SeedSequence(seed)

    # -- execution -------------------------------------------------------

    def run(self, circuits, shots=1024, purpose="run", validate=True):
        """See :meth:`Backend.run`; the purpose rides along to workers."""
        self._active_purpose = purpose
        try:
            return super().run(
                circuits, shots=shots, purpose=purpose, validate=validate
            )
        finally:
            self._active_purpose = "run"

    def _record_run(self, n_circuits, total_shots, purpose) -> None:
        """No-op: worker meter windows were already merged."""

    def _spawn_seeds(self, n: int) -> list | None:
        """Per-circuit substreams for a sampled group (None if exact).

        ``SeedSequence.spawn`` is stateful: successive groups of one
        submission (and successive submissions) consume successive
        children, so a fixed root seed and submission sequence always
        yields the same per-circuit streams, no matter how the planner
        chunks them or which worker executes each chunk.
        """
        if self.exact_execution():
            return None
        return list(self._seed_seq.spawn(n))

    # -- resilience ------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether the facade has permanently left the pool behind."""
        return self._degraded

    def _timeouts(self, shards) -> list[float] | None:
        """Per-shard progress timeouts for the gather loop."""
        if self.hang_timeout_s is None:
            return None
        if self.hang_timeout_s == "auto":
            density = self.spec.kind == "noisy"
            return [
                shard_timeout_s(
                    shard,
                    density=density,
                    plan=self.planner._costing_plan(shard.circuits[0]),
                )
                for shard in shards
            ]
        return [float(self.hang_timeout_s)] * len(shards)

    def _local_backend(self) -> Backend:
        """The lazily built in-process replica degraded runs execute on."""
        if self._local_replica is None:
            self._local_replica = self.spec.build()
        return self._local_replica

    def _degrade(self, exc: WorkerCrashError) -> None:
        """Account for one pool give-up; re-raise if fallback is off.

        :class:`RestartBudgetExhausted` flips the facade to
        *permanently* degraded — the pool has proven it cannot hold
        workers alive, so further submissions skip it entirely rather
        than re-spending shard retries to rediscover that.
        """
        if not self.fallback_enabled:
            raise exc
        self.fallbacks += 1
        if isinstance(exc, RestartBudgetExhausted):
            self._degraded = True
        if not self._warned_fallback:
            self._warned_fallback = True
            warnings.warn(
                f"{self.name}: worker pool gave up "
                f"({type(exc).__name__}: {exc}); degrading to "
                f"in-process execution — results are unchanged, "
                f"throughput is not",
                ResilienceWarning,
                stacklevel=4,
            )

    def _execute(self, circuit, shots: int) -> ExecutionResult:
        """Single-circuit path: one one-circuit shard through the pool."""
        return self._execute_batch([circuit], shots)[0]

    def _execute_batch(
        self, circuits, shots: int
    ) -> list[ExecutionResult]:
        """Shard one structure group across the pool and reassemble.

        On pool escalation the *same* shards (same seeds, same
        chunking) re-execute in-process, so degraded output is
        indistinguishable from pooled output.  Meter windows travel
        inside the responses and are merged only after the executing
        path succeeded end to end — a failed pool attempt contributes
        nothing, so the replay cannot double-count.
        """
        circuits = list(circuits)
        purpose = self._active_purpose
        shards = self.planner.plan(
            circuits, seeds=self._spawn_seeds(len(circuits))
        )
        responses = None
        if not self._degraded:
            requests = [
                (shard.worker, ("run", (shard, shots, purpose)))
                for shard in shards
            ]
            try:
                responses = self.pool.run_shards(
                    requests, timeouts=self._timeouts(shards)
                )
            except WorkerCrashError as exc:
                self._degrade(exc)
        if responses is None:
            local = self._local_backend()
            responses = [
                execute_shard(local, shard, shots, purpose)
                for shard in shards
            ]
        results: list[ExecutionResult | None] = [None] * len(circuits)
        for shard, (shard_results, window) in zip(shards, responses):
            for position, result in zip(shard.positions, shard_results):
                results[position] = result
            self.meter.merge(window)
        return results

    # -- distribution passthrough (noisy parity) -------------------------

    def observed_probabilities_batch(self, circuits) -> np.ndarray:
        """Sharded :meth:`NoisyBackend.observed_probabilities_batch`.

        For noisy specs, rows are the observed (noise + readout error)
        distributions; for ideal specs, the exact Born-rule
        distributions.  Either way row ``i`` is bit-identical to the
        single-process computation for ``circuits[i]`` — the noisy
        half of the exact-mode equivalence contract.
        """
        circuits = list(circuits)
        if not circuits:
            raise ValueError("need at least one circuit")
        shards = self.planner.plan(circuits)
        responses = None
        if not self._degraded:
            requests = [
                (shard.worker, ("probs", (shard,))) for shard in shards
            ]
            try:
                responses = self.pool.run_shards(
                    requests, timeouts=self._timeouts(shards)
                )
            except WorkerCrashError as exc:
                self._degrade(exc)
        if responses is None:
            local = self._local_backend()
            responses = [
                (batch_probabilities(local, shard.circuits), None)
                for shard in shards
            ]
        rows = np.empty(
            (len(circuits), 2 ** circuits[0].n_qubits), dtype=np.float64
        )
        for shard, (shard_rows, _) in zip(shards, responses):
            rows[shard.positions] = shard_rows
        return rows

    def observed_probabilities(self, circuit) -> np.ndarray:
        """Single-circuit convenience over the sharded batch form."""
        return self.observed_probabilities_batch([circuit])[0]

    # -- telemetry -------------------------------------------------------

    def stats(self) -> dict:
        """Pool + meter roll-up."""
        return {
            "name": self.name,
            "workers": self.workers,
            "pool": self.pool.stats(),
            "meter": self.meter.snapshot(),
            "fallbacks": self.fallbacks,
            "degraded": self._degraded,
        }

    def __repr__(self) -> str:
        return (
            f"ShardedBackend({self.spec.describe()}, "
            f"workers={self.workers})"
        )
