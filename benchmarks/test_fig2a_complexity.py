"""Fig. 2a: theoretical #Ops and #Regs, classical simulation vs quantum.

Classical cost doubles per added qubit; quantum cost is flat-to-linear.
"""

from __future__ import annotations

import numpy as np

from harness import format_table
from repro.scaling import advantage_factor, complexity_table, crossover_qubits

QUBIT_RANGE = list(range(2, 41, 2))


def run_fig2a():
    return complexity_table(QUBIT_RANGE)


def test_fig2a_complexity_scaling(benchmark):
    table = benchmark.pedantic(run_fig2a, rounds=1, iterations=1)

    rows = [
        [
            int(n),
            f"{table['classical_ops'][i]:.2e}",
            f"{table['quantum_ops'][i]:.2e}",
            f"{table['classical_regs'][i]:.2e}",
            f"{table['quantum_regs'][i]:.0f}",
        ]
        for i, n in enumerate(table["qubits"])
        if n % 8 == 0 or n in (2, 40)
    ]
    print()
    print(format_table(
        ["qubits", "classical#Ops", "quantum#Ops",
         "classical#Regs", "quantum#Regs"],
        rows, title="Fig. 2a: theoretical complexity",
    ))

    classical_ops = table["classical_ops"]
    quantum_ops = table["quantum_ops"]
    # Exponential vs near-linear growth rates.
    classical_growth = classical_ops[-1] / classical_ops[-2]
    quantum_growth = quantum_ops[-1] / quantum_ops[-2]
    assert classical_growth > 3.5       # x4 per 2 qubits
    assert quantum_growth < 1.2
    # Classical ops reach the paper's ~1e11+ magnitude by 40 qubits.
    assert classical_ops[-1] > 1e13
    # Classical registers explode, quantum registers stay = n.
    assert table["classical_regs"][-1] > 1e12
    assert table["quantum_regs"][-1] == 40
    # There is a crossover, after which quantum stays cheaper for good.
    cross = crossover_qubits(table["qubits"], classical_ops, quantum_ops)
    assert cross is not None and cross <= 30
    assert advantage_factor(
        table["qubits"], classical_ops, quantum_ops, 40
    ) > 1e4
    print(f"\n#Ops crossover at {cross} qubits")
