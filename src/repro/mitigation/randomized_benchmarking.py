"""Single-qubit randomized benchmarking (RB).

The paper cites Magesan et al.'s RB protocol as the way noisy systems
"need to be characterized" (Sec. 2, ref [13]).  This is the standard
implementation: random sequences of single-qubit Cliffords of growing
length, closed by the net inverse so the ideal outcome is always |0>;
the survival probability decays as ``A p^m + B``, and the average error
per Clifford is ``(1 - p) / 2``.

Used by tests to verify that the emulated devices' *measured* RB error
tracks their calibration-table gate error — i.e. that the noise
substrate is self-consistent the way a real lab's would be.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.sim import gates as _gates

#: Generator set whose products cover the single-qubit Clifford group.
_CLIFFORD_NAMES = ("i", "x", "y", "z", "h", "s", "sdg")


def random_clifford_sequence(
    length: int, rng: np.random.Generator
) -> list[str]:
    """A random length-``length`` sequence of Clifford generators."""
    if length < 1:
        raise ValueError("sequence length must be positive")
    return [
        _CLIFFORD_NAMES[int(rng.integers(len(_CLIFFORD_NAMES)))]
        for _ in range(length)
    ]


def _sequence_unitary(names: list[str]) -> np.ndarray:
    out = np.eye(2, dtype=np.complex128)
    for name in names:
        out = _gates.get_gate(name).matrix() @ out
    return out


def rb_circuit(
    names: list[str], qubit: int = 0, n_qubits: int = 1
) -> QuantumCircuit:
    """Sequence + inverse on one qubit; ideal output is |0...0>.

    The inverse is appended as an explicit ``u3`` synthesized from the
    sequence unitary's inverse (decomposed via ZYZ angles).
    """
    circuit = QuantumCircuit(n_qubits)
    for name in names:
        circuit.add(name, qubit)
    inverse = _sequence_unitary(names).conj().T
    theta, phi, lam = _zyz_angles(inverse)
    circuit.add("u3", qubit, theta, phi, lam)
    return circuit


def _zyz_angles(unitary: np.ndarray) -> tuple[float, float, float]:
    """U3 angles reproducing ``unitary`` up to global phase."""
    # Strip global phase so u[0, 0] is real non-negative.
    u = unitary.copy()
    phase = np.angle(u[0, 0]) if abs(u[0, 0]) > 1e-12 else np.angle(u[1, 0])
    u = u * np.exp(-1j * phase)
    theta = 2.0 * np.arctan2(abs(u[1, 0]), abs(u[0, 0]))
    if abs(u[1, 0]) < 1e-12:
        phi = 0.0
        lam = float(np.angle(u[1, 1])) if abs(u[1, 1]) > 1e-12 else 0.0
    elif abs(u[0, 0]) < 1e-12:
        lam = 0.0
        phi = float(np.angle(u[1, 0]) - np.angle(u[0, 1]) - np.pi)
        # Recompute phi directly: u[1,0] = e^{i phi} sin(theta/2).
        phi = float(np.angle(u[1, 0]))
    else:
        phi = float(np.angle(u[1, 0]))
        lam = float(np.angle(-u[0, 1]))
    return float(theta), phi, lam


@dataclasses.dataclass(frozen=True)
class RbResult:
    """Fitted RB decay.

    Attributes:
        lengths: Sequence lengths measured.
        survival: Mean survival probability per length.
        decay: Fitted ``p`` of ``A p^m + B``.
        error_per_clifford: ``(1 - p) / 2``.
    """

    lengths: tuple[int, ...]
    survival: tuple[float, ...]
    decay: float
    error_per_clifford: float


def run_rb(
    backend,
    qubit: int = 0,
    lengths: tuple[int, ...] = (1, 4, 8, 16, 32),
    n_sequences: int = 6,
    shots: int = 1024,
    seed: int = 0,
) -> RbResult:
    """Run single-qubit RB on a backend and fit the decay curve."""
    if len(lengths) < 2:
        raise ValueError("need at least two sequence lengths")
    rng = np.random.default_rng(seed)
    circuits = []
    for length in lengths:
        for _ in range(n_sequences):
            names = random_clifford_sequence(length, rng)
            circuits.append(rb_circuit(names, qubit=qubit))
    results = backend.run(circuits, shots=shots, purpose="rb")

    survival = []
    index = 0
    for _ in lengths:
        values = []
        for _ in range(n_sequences):
            result = results[index]
            index += 1
            if result.counts:
                total = sum(result.counts.values())
                values.append(result.counts.get("0", 0) / total)
            else:
                # Exact backend: survival from the expectation value.
                values.append(0.5 * (1.0 + result.expectations[qubit]))
        survival.append(float(np.mean(values)))

    decay = _fit_decay(np.asarray(lengths, float), np.asarray(survival))
    return RbResult(
        lengths=tuple(int(m) for m in lengths),
        survival=tuple(survival),
        decay=decay,
        error_per_clifford=(1.0 - decay) / 2.0,
    )


def _fit_decay(lengths: np.ndarray, survival: np.ndarray) -> float:
    """Fit p in ``A p^m + B`` with B fixed at the 1/2 asymptote.

    Linearizes ``log(survival - 1/2) = log A + m log p`` on the points
    above the asymptote; falls back to a ratio estimate when too few
    points qualify.
    """
    excess = survival - 0.5
    usable = excess > 1e-3
    if usable.sum() >= 2:
        slope = np.polyfit(lengths[usable], np.log(excess[usable]), 1)[0]
        decay = float(np.exp(slope))
    else:
        ratio = max(1e-6, excess[-1] / max(excess[0], 1e-6))
        decay = float(ratio ** (1.0 / max(1.0, lengths[-1] - lengths[0])))
    return min(1.0, max(0.0, decay))
