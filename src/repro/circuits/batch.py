"""Stacked same-structure circuits: the unit of batched execution.

All the circuits the training loop generates in one backend submission —
the forward circuits of a mini-batch, or the ``2 x |selected params|``
parameter-shifted clones per example — share one structural template
sequence and differ only in angle values.  ``CircuitBatch`` exploits
that: it stacks the resolved angles of ``B`` same-structure circuits
into per-operation arrays, so the batched simulator can evolve all
``B`` statevectors through each gate with a single stacked contraction
instead of ``B`` Python-level passes.

``group_by_structure`` is the partitioning step of the backend fast
path: it splits an arbitrary submission into same-structure groups
while remembering each circuit's original position, so results can be
reassembled in submission order.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit


class CircuitBatch:
    """``B`` structurally identical circuits with stacked angles.

    Args:
        circuits: Non-empty sequence of :class:`QuantumCircuit` objects
            that all share one :meth:`~QuantumCircuit.structure_signature`.

    Attributes:
        circuits: The wrapped circuits, in the order given.
        n_qubits: Common qubit count.
        templates: The common structural template sequence.
        size: Batch size ``B``.
    """

    def __init__(self, circuits: Sequence[QuantumCircuit]):
        circuits = list(circuits)
        if not circuits:
            raise ValueError("CircuitBatch needs at least one circuit")
        signature = circuits[0].structure_signature()
        for circuit in circuits[1:]:
            other = circuit.structure_signature()
            # Clones propagate the cached signature tuple, so the
            # common case is object identity — skip the deep tuple
            # comparison for them.
            if other is not signature and other != signature:
                raise ValueError(
                    "all circuits in a CircuitBatch must share one "
                    "structure signature"
                )
        self.circuits = circuits
        self.n_qubits = circuits[0].n_qubits
        self.templates = circuits[0].templates
        self.size = len(circuits)
        # Per-op (B, num_params) arrays of resolved angles, plus a flag
        # marking ops whose angles coincide across the whole batch (the
        # simulator then builds one gate matrix instead of B).
        self._op_params: list[np.ndarray | None] = []
        self._op_uniform: list[bool] = []
        self._stack_angles()

    def _stack_angles(self) -> None:
        # One vectorized resolution pass for every single-parameter op:
        # a (B, n_ops) matrix holds, per circuit, the op's literal angle
        # or shift offset; trainable columns then add the bound theta
        # entries in one fancy-indexed assignment.  Multi-parameter ops
        # (only u3 in the registry) fall back to a per-op gather.  The
        # arithmetic — float64 "theta[i] + offset" — is element-for-
        # element the same as the old per-circuit resolution, so the
        # stacked values stay bit-identical.
        templates = self.templates
        rows = [c._templates for c in self.circuits]
        # Clones share template objects except where they were edited
        # (a parameter shift touches one position), so resolve the
        # reference row once and patch only non-identical templates —
        # and only single-parameter positions carry a value at all.
        reference = rows[0]
        single = [
            pos
            for pos, t in enumerate(templates)
            if t.param_index is not None or len(t.params) == 1
        ]
        ref_values = [
            reference[pos].offset
            if reference[pos].param_index is not None
            else reference[pos].params[0]
            for pos in single
        ]
        packed = np.tile(ref_values, (len(rows), 1))
        for index, row in enumerate(rows[1:], 1):
            for column, pos in enumerate(single):
                t = row[pos]
                if t is not reference[pos]:
                    packed[index, column] = (
                        t.offset
                        if t.param_index is not None
                        else t.params[0]
                    )
        base = np.zeros((len(rows), len(templates)), dtype=np.float64)
        base[:, single] = packed
        trainable = [
            pos
            for pos, t in enumerate(templates)
            if t.param_index is not None
        ]
        if trainable:
            thetas = np.stack([c._parameters for c in self.circuits])
            indices = [templates[pos].param_index for pos in trainable]
            base[:, trainable] += thetas[:, indices]
        uniform = np.all(base == base[0:1], axis=0)
        for pos, template in enumerate(templates):
            # Parameterless op: no literal params and no trainable slot.
            if template.param_index is None and not template.params:
                self._op_params.append(None)
                self._op_uniform.append(True)
                continue
            if template.param_index is None and len(template.params) != 1:
                # Multi-parameter fixed op: gather the full tuples.
                values = np.array(
                    [row[pos].params for row in rows], dtype=np.float64
                )
                self._op_params.append(values)
                self._op_uniform.append(bool(np.all(values == values[0])))
                continue
            self._op_params.append(base[:, pos : pos + 1])
            self._op_uniform.append(bool(uniform[pos]))

    # -- queries ---------------------------------------------------------

    def num_operations(self) -> int:
        """Gate count of the common structure."""
        return len(self.templates)

    def op_params(self, position: int) -> np.ndarray | None:
        """Resolved ``(B, num_params)`` angles of op ``position``.

        ``None`` for parameterless gates.
        """
        return self._op_params[position]

    def op_is_uniform(self, position: int) -> bool:
        """True when op ``position`` has one angle tuple batch-wide."""
        return self._op_uniform[position]

    @property
    def angles(self) -> np.ndarray:
        """Stacked first angles, shape ``(B, n_ops)``.

        Parameterless ops contribute a 0.0 column; multi-parameter gates
        (only ``u3`` in the registry) contribute their first angle — use
        :meth:`op_params` for the full tuple.
        """
        out = np.zeros((self.size, len(self.templates)), dtype=np.float64)
        for pos, values in enumerate(self._op_params):
            if values is not None:
                out[:, pos] = values[:, 0]
        return out

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"CircuitBatch({self.size} circuits, {self.n_qubits} qubits, "
            f"{len(self.templates)} ops)"
        )


def group_by_structure(
    circuits: Sequence[QuantumCircuit],
) -> list[tuple[list[int], list[QuantumCircuit]]]:
    """Partition circuits into same-structure groups, keeping positions.

    Buckets on the cached integer :meth:`~QuantumCircuit.structure_key`
    (hashing a deep signature tuple per dict operation dominated
    grouping cost for large sweeps) and confirms membership on the full
    signature within a bucket — clones share the cached signature
    object, so that check is usually pointer identity.

    Returns:
        One ``(positions, members)`` pair per distinct structure, in
        first-appearance order; ``positions`` are indices into the input
        sequence so callers can scatter per-group results back into
        submission order.
    """
    buckets: dict[int, list[tuple]] = {}
    order: list[tuple[list[int], list[QuantumCircuit]]] = []
    for position, circuit in enumerate(circuits):
        key = circuit.structure_key()
        signature = circuit.structure_signature()
        entry = None
        for candidate in buckets.setdefault(key, []):
            candidate_sig = candidate[0]
            if candidate_sig is signature or candidate_sig == signature:
                entry = candidate
                break
        if entry is None:
            entry = (signature, ([], []))
            buckets[key].append(entry)
            order.append(entry[1])
        positions, members = entry[1]
        positions.append(position)
        members.append(circuit)
    return order
