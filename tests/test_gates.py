"""Unit and property tests for the gate matrix library."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import gates

ANGLES = st.floats(
    min_value=-4 * np.pi, max_value=4 * np.pi,
    allow_nan=False, allow_infinity=False,
)


class TestFixedGates:
    def test_pauli_matrices_square_to_identity(self):
        for name in ("x", "y", "z", "h"):
            matrix = gates.get_gate(name).matrix()
            assert np.allclose(matrix @ matrix, np.eye(2), atol=1e-12)

    def test_s_is_sqrt_z(self):
        assert np.allclose(gates.S @ gates.S, gates.Z)

    def test_t_is_sqrt_s(self):
        assert np.allclose(gates.T @ gates.T, gates.S)

    def test_sx_is_sqrt_x(self):
        assert np.allclose(gates.SX @ gates.SX, gates.X)

    def test_sdg_tdg_are_inverses(self):
        assert np.allclose(gates.S @ gates.SDG, np.eye(2))
        assert np.allclose(gates.T @ gates.TDG, np.eye(2))

    def test_cx_flips_target_when_control_set(self):
        state = np.zeros(4)
        state[2] = 1.0  # |10>
        out = gates.CX @ state
        assert np.allclose(out, [0, 0, 0, 1])  # |11>

    def test_cz_phases_only_the_11_state(self):
        assert np.allclose(np.diag(gates.CZ), [1, 1, 1, -1])

    def test_swap_exchanges_basis_states(self):
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        assert np.allclose(gates.SWAP @ state, [0, 0, 1, 0])  # |10>

    def test_all_fixed_gates_unitary(self):
        for name, spec in gates.GATES.items():
            if spec.num_params == 0:
                assert gates.is_unitary(spec.matrix()), name


class TestParameterizedGates:
    @given(theta=ANGLES)
    @settings(max_examples=50, deadline=None)
    def test_single_qubit_rotations_unitary(self, theta):
        for factory in (gates.rx, gates.ry, gates.rz):
            assert gates.is_unitary(factory(theta))

    @given(theta=ANGLES)
    @settings(max_examples=50, deadline=None)
    def test_two_qubit_rotations_unitary(self, theta):
        for factory in (gates.rxx, gates.ryy, gates.rzz, gates.rzx):
            assert gates.is_unitary(factory(theta))

    @given(alpha=ANGLES, beta=ANGLES)
    @settings(max_examples=50, deadline=None)
    def test_rotation_composition(self, alpha, beta):
        """RX(a) RX(b) = RX(a+b) — the identity Eq. 5's proof uses."""
        assert np.allclose(
            gates.rx(alpha) @ gates.rx(beta), gates.rx(alpha + beta),
            atol=1e-10,
        )

    def test_rx_matches_closed_form(self):
        theta = 0.7
        expected = (
            np.cos(theta / 2) * np.eye(2)
            - 1j * np.sin(theta / 2) * gates.X
        )
        assert np.allclose(gates.rx(theta), expected)

    def test_rx_at_zero_is_identity(self):
        for factory in (gates.rx, gates.ry, gates.rz, gates.rzz,
                        gates.rxx, gates.ryy, gates.rzx):
            matrix = factory(0.0)
            assert np.allclose(matrix, np.eye(matrix.shape[0]))

    def test_rx_half_pi_matches_paper(self):
        """RX(+-pi/2) = (I -+ iX)/sqrt(2) — the shift matrices of Eq. 4."""
        expected_plus = (np.eye(2) - 1j * gates.X) / np.sqrt(2)
        expected_minus = (np.eye(2) + 1j * gates.X) / np.sqrt(2)
        assert np.allclose(gates.rx(np.pi / 2), expected_plus)
        assert np.allclose(gates.rx(-np.pi / 2), expected_minus)

    def test_rzz_is_diagonal_phase(self):
        theta = 1.1
        matrix = gates.rzz(theta)
        phases = np.exp(-0.5j * theta * np.array([1, -1, -1, 1]))
        assert np.allclose(matrix, np.diag(phases))

    @given(theta=ANGLES, phi=ANGLES, lam=ANGLES)
    @settings(max_examples=30, deadline=None)
    def test_u3_unitary(self, theta, phi, lam):
        assert gates.is_unitary(gates.u3(theta, phi, lam))

    def test_controlled_rotations_block_structure(self):
        matrix = gates.crx(0.9)
        assert np.allclose(matrix[:2, :2], np.eye(2))
        assert np.allclose(matrix[2:, 2:], gates.rx(0.9))


class TestShiftRuleMetadata:
    def test_shift_rule_gates_have_involutory_generators(self):
        """Generators must satisfy G^2 = I (eigenvalues +/-1, Eq. 2)."""
        for name in gates.SHIFT_RULE_GATES:
            spec = gates.GATES[name]
            generator = gates.pauli_word_matrix(spec.generator)
            dim = generator.shape[0]
            assert np.allclose(generator @ generator, np.eye(dim)), name

    def test_generator_reproduces_gate(self):
        """exp(-i theta G / 2) must equal the gate factory output."""
        theta = 0.37
        for name in gates.SHIFT_RULE_GATES:
            spec = gates.GATES[name]
            generator = gates.pauli_word_matrix(spec.generator)
            dim = generator.shape[0]
            expected = (
                np.cos(theta / 2) * np.eye(dim)
                - 1j * np.sin(theta / 2) * generator
            )
            assert np.allclose(spec.matrix(theta), expected), name

    def test_phase_gate_not_shift_rule(self):
        assert "phase" not in gates.SHIFT_RULE_GATES
        assert "u3" not in gates.SHIFT_RULE_GATES


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert gates.get_gate("RX") is gates.get_gate("rx")

    def test_unknown_gate_raises(self):
        with pytest.raises(KeyError, match="unknown gate"):
            gates.get_gate("toffoli")

    def test_wrong_param_count_raises(self):
        with pytest.raises(ValueError, match="parameter"):
            gates.get_gate("rx").matrix()
        with pytest.raises(ValueError, match="parameter"):
            gates.get_gate("h").matrix(0.5)

    def test_pauli_word_matrix(self):
        assert np.allclose(gates.pauli_word_matrix("ZZ"), gates.ZZ)
        assert np.allclose(gates.pauli_word_matrix("ZX"), gates.ZX)
        assert np.allclose(
            gates.pauli_word_matrix("IZ"), np.kron(gates.I2, gates.Z)
        )

    def test_pauli_word_empty_raises(self):
        with pytest.raises(ValueError):
            gates.pauli_word_matrix("")

    def test_is_unitary_rejects_non_unitary(self):
        assert not gates.is_unitary(np.array([[1.0, 1.0], [0.0, 1.0]]))
